// Package cuda models the CUDA execution and memory-management semantics
// the paper analyzes: kernel launches on an integrated (TX1) or discrete
// (GTX 980) Maxwell GPU, explicit host<->device copies, and the three
// memory-management models of Sec. II-B — host-and-device copy, zero-copy,
// and unified memory — including the TX1 behaviour where zero-copy
// mappings bypass the GPU cache hierarchy to preserve coherency (Sec.
// III-B.5, confirmed with Nvidia in the paper).
package cuda

import (
	"math"

	"clustersoc/internal/perf"
	"clustersoc/internal/sim"
	"clustersoc/internal/soc"
)

// MemModel selects one of the three CUDA memory-management models.
type MemModel int

const (
	// HostDevice is the conventional model: separate address spaces with
	// explicit cudaMemcpy, even on unified-memory hardware like the TX1.
	HostDevice MemModel = iota
	// ZeroCopy maps host memory into the device: no copies, but on the TX1
	// every access bypasses the GPU L2 to stay coherent.
	ZeroCopy
	// Unified is CUDA managed memory: data migrates automatically; caching
	// works, copies still happen (transparently), plus driver overhead.
	Unified
)

// String names the model as the paper's Table III does.
func (m MemModel) String() string {
	switch m {
	case HostDevice:
		return "H & D"
	case ZeroCopy:
		return "zero-copy"
	case Unified:
		return "unified memory"
	}
	return "unknown"
}

// unifiedOverhead is the driver cost factor of managed-memory migration
// relative to an explicit memcpy.
const unifiedOverhead = 1.02

// Kernel describes one GPU kernel's resource demands.
type Kernel struct {
	Name string
	// FLOPs executed by the kernel.
	FLOPs float64
	// Bytes of memory traffic the kernel requests (through the L2).
	Bytes float64
	// L2HitRatio is the fraction of Bytes the L2 serves under normal
	// caching; the remainder goes to DRAM.
	L2HitRatio float64
	// SinglePrecision kernels run at the FP32 rate (AI inference); double
	// precision (the scientific codes) pays the Maxwell 1/32 ratio.
	SinglePrecision bool
	// HalfPrecision kernels run at the FP16 rate — 2x FP32 on the TX1 but
	// 1/64 on the desktop GM204 — and halve the memory traffic. Takes
	// precedence over SinglePrecision.
	HalfPrecision bool
}

// Device is one simulated GPU.
type Device struct {
	Config soc.GPUConfig
	Model  MemModel

	eng    *sim.Engine
	mem    *sim.Pipe     // device-visible memory (shared node DRAM or GDDR5)
	pcie   *sim.Pipe     // host link for discrete cards; nil when integrated
	stream *sim.Resource // default stream: kernels serialize

	Metrics   perf.GPUMetrics
	smBusy    float64 // SM-seconds, for the power meter
	lastStall float64 // memory-stall seconds of the most recent Launch
}

// New creates a device. mem is the pipe its memory accesses go through:
// for an integrated GPU pass the node's shared DRAM pipe, so CPU and GPU
// traffic contend (the paper's central hardware property); for a discrete
// card pass a dedicated GDDR5 pipe and a PCIe pipe for copies.
func New(e *sim.Engine, cfg soc.GPUConfig, mem, pcie *sim.Pipe) *Device {
	return &Device{
		Config: cfg,
		Model:  HostDevice,
		eng:    e,
		mem:    mem,
		pcie:   pcie,
		stream: sim.NewResource(1),
	}
}

// SMBusySeconds returns accumulated SM-seconds for power accounting.
func (d *Device) SMBusySeconds() float64 { return d.smBusy }

// effectiveRate returns the FLOP/s the kernel's precision can reach.
func (d *Device) effectiveRate(k Kernel) float64 {
	switch {
	case k.HalfPrecision:
		return d.Config.PeakFP16() * d.Config.Efficiency
	case k.SinglePrecision:
		return d.Config.PeakFP32() * d.Config.Efficiency
	default:
		return d.Config.PeakFP64() * d.Config.Efficiency
	}
}

// CopyIn moves bytes from host to device ahead of a kernel, according to
// the memory-management model. Blocks p until the data is in place.
func (d *Device) CopyIn(p *sim.Process, bytes float64) { d.copy(p, bytes) }

// CopyOut moves results back to the host.
func (d *Device) CopyOut(p *sim.Process, bytes float64) { d.copy(p, bytes) }

func (d *Device) copy(p *sim.Process, bytes float64) {
	if bytes <= 0 {
		return
	}
	switch d.Model {
	case ZeroCopy:
		// No copy: the kernel will access host memory in place (and pay
		// for it there).
		return
	case Unified:
		bytes *= unifiedOverhead
	}
	start := p.Now()
	if d.pcie != nil {
		// Discrete: host DRAM -> PCIe -> GDDR5; PCIe is the bottleneck.
		d.pcie.Transfer(p, bytes)
	} else {
		// Integrated: a memcpy within the shared DRAM reads and writes the
		// data, so it costs 2x bytes of DRAM traffic at the CPU port rate.
		d.mem.TransferRated(p, 2*bytes, d.Config.MemBandwidth)
	}
	d.Metrics.CopyBytes += bytes
	d.Metrics.CopySeconds += p.Now() - start
}

// Launch runs the kernel, blocking p until completion. Kernels on the
// default stream serialize. The kernel's duration is the max of its
// compute time and its memory time, the latter shaped by the memory model.
func (d *Device) Launch(p *sim.Process, k Kernel) {
	d.stream.Acquire(p)
	defer d.stream.Release(d.eng)

	p.Sleep(d.Config.LaunchOverhead)
	start := p.Now()

	hit := math.Min(1, math.Max(0, k.L2HitRatio))
	if k.HalfPrecision {
		k.Bytes /= 2 // half-width values halve the traffic
	}
	bw := d.Config.MemBandwidth
	if d.Model == ZeroCopy {
		// TX1 zero-copy: cache hierarchy bypassed for coherency; every
		// byte goes to memory at a degraded coherent-path rate. On a
		// discrete card the "memory" is host DRAM across PCIe.
		hit = 0
		bw *= d.Config.ZeroCopyPenalty
	}
	dramBytes := k.Bytes * (1 - hit)

	if dramBytes > 0 {
		if d.Model == ZeroCopy && d.pcie != nil {
			d.pcie.Transfer(p, dramBytes)
		} else {
			d.mem.TransferRated(p, dramBytes, bw)
		}
	}
	memTime := p.Now() - start

	computeTime := k.FLOPs / d.effectiveRate(k)
	if computeTime > memTime {
		p.Sleep(computeTime - memTime)
	}
	dur := p.Now() - start

	d.smBusy += dur * float64(d.Config.SMs)
	d.Metrics.Launches++
	d.Metrics.KernelSeconds += dur
	d.Metrics.FLOPs += k.FLOPs
	d.Metrics.DRAMBytes += dramBytes
	d.Metrics.L2Accesses += k.Bytes
	d.Metrics.L2Hits += k.Bytes * hit
	d.Metrics.ComputeSeconds += math.Min(computeTime, dur)
	d.lastStall = 0
	if memTime > computeTime {
		d.Metrics.StallSeconds += memTime - computeTime
		d.lastStall = memTime - computeTime
	}
}

// LastLaunchStallSeconds returns the memory-stall share of the most
// recently completed Launch. Kernels on the default stream serialize and
// the caller reads this before yielding, so the value cannot be clobbered
// by a concurrent launch — the critical-path recorder uses it to split a
// kernel span into GPU-compute and DRAM-stall time.
func (d *Device) LastLaunchStallSeconds() float64 { return d.lastStall }

// LaunchAsync starts the kernel on a helper process and returns a gate
// that opens at completion — the mechanism hpl's lookahead uses to overlap
// the trailing update with the next panel broadcast.
func (d *Device) LaunchAsync(k Kernel) *sim.Gate {
	g := &sim.Gate{}
	d.eng.Spawn("cuda-async:"+k.Name, func(hp *sim.Process) {
		d.Launch(hp, k)
		g.Open(d.eng)
	})
	return g
}
