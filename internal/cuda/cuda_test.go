package cuda

import (
	"math"
	"testing"

	"clustersoc/internal/sim"
	"clustersoc/internal/soc"
	"clustersoc/internal/units"
)

func tx1Device(model MemModel) (*sim.Engine, *Device) {
	e := sim.NewEngine()
	cfg := soc.JetsonTX1()
	dram := sim.NewPipe(e, "dram", cfg.DRAMBandwidth, 0)
	d := New(e, *cfg.GPU, dram, nil)
	d.Model = model
	return e, d
}

func gtxDevice(model MemModel) (*sim.Engine, *Device) {
	e := sim.NewEngine()
	cfg := soc.XeonGTX980()
	gddr := sim.NewPipe(e, "gddr5", cfg.GPU.MemBandwidth, 0)
	pcie := sim.NewPipe(e, "pcie", cfg.GPU.PCIeBandwidth, 5*units.Microsecond)
	d := New(e, *cfg.GPU, gddr, pcie)
	d.Model = model
	return e, d
}

func run(e *sim.Engine, body func(p *sim.Process)) float64 {
	e.Spawn("t", body)
	return e.Run()
}

func TestComputeBoundKernel(t *testing.T) {
	e, d := tx1Device(HostDevice)
	k := Kernel{Name: "dgemm", FLOPs: 1 * units.GFLOP, Bytes: 1 * units.MB, L2HitRatio: 0.5}
	dur := run(e, func(p *sim.Process) { d.Launch(p, k) })
	want := k.FLOPs / (d.Config.PeakFP64() * d.Config.Efficiency)
	if math.Abs(dur-want)/want > 0.05 {
		t.Fatalf("compute-bound kernel took %v, want ~%v", dur, want)
	}
	if d.Metrics.MemoryStallFraction() > 0.01 {
		t.Errorf("compute-bound kernel reports memory stalls: %v", d.Metrics.MemoryStallFraction())
	}
}

func TestMemoryBoundKernel(t *testing.T) {
	e, d := tx1Device(HostDevice)
	k := Kernel{Name: "stream", FLOPs: 1 * units.MFLOP, Bytes: 2 * units.GB, L2HitRatio: 0}
	dur := run(e, func(p *sim.Process) { d.Launch(p, k) })
	want := k.Bytes / d.Config.MemBandwidth
	if math.Abs(dur-want)/want > 0.05 {
		t.Fatalf("memory-bound kernel took %v, want ~%v", dur, want)
	}
	if d.Metrics.MemoryStallFraction() < 0.9 {
		t.Errorf("memory-bound kernel stalls = %v, want ~1", d.Metrics.MemoryStallFraction())
	}
}

func TestSinglePrecisionFaster(t *testing.T) {
	e, d := tx1Device(HostDevice)
	kd := Kernel{Name: "fp64", FLOPs: units.GFLOP}
	ks := Kernel{Name: "fp32", FLOPs: units.GFLOP, SinglePrecision: true}
	var t64, t32 float64
	run(e, func(p *sim.Process) {
		s := p.Now()
		d.Launch(p, kd)
		t64 = p.Now() - s
		s = p.Now()
		d.Launch(p, ks)
		t32 = p.Now() - s
	})
	ratio := t64 / t32
	if math.Abs(ratio-32)/32 > 0.1 {
		t.Fatalf("FP64/FP32 ratio = %.1f, want ~32 (Maxwell)", ratio)
	}
}

// Table III mechanism: zero-copy bypasses the cache hierarchy on the TX1 —
// low L2 utilization, low L2 read throughput, high memory stalls, and a
// roughly 2x runtime on a cache-friendly kernel.
func TestZeroCopyBypassesCache(t *testing.T) {
	k := Kernel{Name: "jacobi", FLOPs: 0.2 * units.GFLOP, Bytes: 1.5 * units.GB, L2HitRatio: 0.45}
	runModel := func(m MemModel) (float64, *Device) {
		e, d := tx1Device(m)
		var dur float64
		run(e, func(p *sim.Process) {
			d.CopyIn(p, 100*units.MB)
			s := p.Now()
			d.Launch(p, k)
			dur = p.Now() - s
		})
		return dur, d
	}
	hd, dHD := runModel(HostDevice)
	zc, dZC := runModel(ZeroCopy)
	if dZC.Metrics.L2Utilization() != 0 {
		t.Errorf("zero-copy L2 utilization = %v, want 0", dZC.Metrics.L2Utilization())
	}
	if dHD.Metrics.L2Utilization() < 0.4 {
		t.Errorf("H&D L2 utilization = %v, want ~0.45", dHD.Metrics.L2Utilization())
	}
	slowdown := zc / hd
	if slowdown < 1.5 || slowdown > 6 {
		t.Errorf("zero-copy slowdown = %.2f, want the ~2-4x regime", slowdown)
	}
	if dZC.Metrics.MemoryStallFraction() <= dHD.Metrics.MemoryStallFraction() {
		t.Error("zero-copy should stall more on memory")
	}
}

// Unified memory performs like host-and-device (Table III: 1.00 +- few %).
func TestUnifiedMatchesHostDevice(t *testing.T) {
	k := Kernel{Name: "jacobi", FLOPs: 0.2 * units.GFLOP, Bytes: 1.5 * units.GB, L2HitRatio: 0.45}
	total := func(m MemModel) float64 {
		e, d := tx1Device(m)
		return run(e, func(p *sim.Process) {
			d.CopyIn(p, 100*units.MB)
			d.Launch(p, k)
			d.CopyOut(p, 100*units.MB)
		})
	}
	hd, um := total(HostDevice), total(Unified)
	if r := um / hd; r < 0.98 || r > 1.06 {
		t.Fatalf("unified/hd runtime ratio = %.3f, want ~1.0", r)
	}
}

// On a discrete card explicit copies ride PCIe; integrated copies are a
// DRAM memcpy. Both must be slower than zero (cost something) and the
// discrete path must reflect PCIe bandwidth.
func TestDiscreteCopyUsesPCIe(t *testing.T) {
	e, d := gtxDevice(HostDevice)
	bytes := 1 * units.GB
	dur := run(e, func(p *sim.Process) { d.CopyIn(p, bytes) })
	want := bytes / d.Config.PCIeBandwidth
	if math.Abs(dur-want)/want > 0.05 {
		t.Fatalf("PCIe copy took %v, want ~%v", dur, want)
	}
}

func TestKernelsSerializeOnStream(t *testing.T) {
	e, d := tx1Device(HostDevice)
	k := Kernel{Name: "k", FLOPs: units.GFLOP}
	single := k.FLOPs / (d.Config.PeakFP64() * d.Config.Efficiency)
	g1 := d.LaunchAsync(k)
	g2 := d.LaunchAsync(k)
	end := e.Run()
	if !g1.IsOpen() || !g2.IsOpen() {
		t.Fatal("async kernels did not complete")
	}
	if end < 2*single*0.95 {
		t.Fatalf("two kernels finished in %v; they must serialize (~%v)", end, 2*single)
	}
}

// Integrated-GPU copies share the node DRAM: CPU traffic delays them.
func TestIntegratedCopySharesDRAM(t *testing.T) {
	e := sim.NewEngine()
	cfg := soc.JetsonTX1()
	dram := sim.NewPipe(e, "dram", cfg.DRAMBandwidth, 0)
	d := New(e, *cfg.GPU, dram, nil)
	// A CPU streaming phase hogs the DRAM first.
	e.Spawn("cpu", func(p *sim.Process) {
		dram.TransferRated(p, 2*units.GB, cfg.CPU.MemBandwidth)
	})
	var copyDone float64
	e.Spawn("gpu", func(p *sim.Process) {
		d.CopyIn(p, 100*units.MB)
		copyDone = p.Now()
	})
	e.Run()
	alone := 2 * 100 * units.MB / cfg.GPU.MemBandwidth
	if copyDone < alone*2 {
		t.Fatalf("GPU copy unaffected by CPU DRAM contention: %v vs alone %v", copyDone, alone)
	}
	if d.SMBusySeconds() != 0 {
		t.Error("copies should not count as SM busy time")
	}
}

// FP16 runs 2x FP32 on the Tegra Maxwell but 64x slower on the GM204 —
// the asymmetry the extensions example demonstrates.
func TestHalfPrecisionAsymmetry(t *testing.T) {
	kh := Kernel{Name: "fp16", FLOPs: units.GFLOP, HalfPrecision: true}
	ks := Kernel{Name: "fp32", FLOPs: units.GFLOP, SinglePrecision: true}
	timeFor := func(mk func(MemModel) (*sim.Engine, *Device), k Kernel) float64 {
		e, d := mk(HostDevice)
		var dur float64
		run(e, func(p *sim.Process) {
			s := p.Now()
			d.Launch(p, k)
			dur = p.Now() - s
		})
		return dur
	}
	txHalf := timeFor(tx1Device, kh)
	txSingle := timeFor(tx1Device, ks)
	if r := txSingle / txHalf; math.Abs(r-2)/2 > 0.1 {
		t.Errorf("TX1 FP32/FP16 ratio %.2f, want ~2", r)
	}
	gtxHalf := timeFor(gtxDevice, kh)
	gtxSingle := timeFor(gtxDevice, ks)
	if r := gtxHalf / gtxSingle; r < 30 {
		t.Errorf("GTX 980 FP16 should be catastrophic, got only %.1fx slower", r)
	}
}

// Half precision also halves the kernel's memory traffic.
func TestHalfPrecisionHalvesTraffic(t *testing.T) {
	e, d := tx1Device(HostDevice)
	k := Kernel{Name: "stream16", FLOPs: 1, Bytes: 2 * units.GB, HalfPrecision: true}
	run(e, func(p *sim.Process) { d.Launch(p, k) })
	if math.Abs(d.Metrics.DRAMBytes-units.GB) > 1 {
		t.Fatalf("FP16 DRAM traffic %v, want half of 2GB", d.Metrics.DRAMBytes)
	}
}
