// Package units centralizes the unit conventions used across the
// simulator: bytes, bytes/second, FLOPs, FLOP/s, seconds, watts, joules.
// All quantities are float64 in SI base units; these helpers exist to make
// configuration literals readable and formatting consistent.
package units

import "fmt"

// Byte-quantity constants (decimal, as NIC and DRAM vendors quote them).
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9

	KiB = 1024.0
	MiB = 1024.0 * 1024.0
	GiB = 1024.0 * 1024.0 * 1024.0
)

// Rate constants.
const (
	GBps = 1e9 // gigabytes per second
	MBps = 1e6

	Gbps = 1e9 / 8 // gigabits per second, expressed in bytes/second
	Mbps = 1e6 / 8
)

// FLOP constants.
const (
	KFLOP = 1e3
	MFLOP = 1e6
	GFLOP = 1e9
	TFLOP = 1e12

	GFLOPS = 1e9 // FLOP per second
	MFLOPS = 1e6
)

// Frequency constants.
const (
	MHz = 1e6
	GHz = 1e9
)

// Time constants (seconds).
const (
	Microsecond = 1e-6
	Millisecond = 1e-3
)

// Bytes formats a byte count with a binary-friendly suffix.
func Bytes(b float64) string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2f GB", b/GB)
	case b >= MB:
		return fmt.Sprintf("%.2f MB", b/MB)
	case b >= KB:
		return fmt.Sprintf("%.2f KB", b/KB)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// Rate formats a bytes/second rate.
func Rate(r float64) string {
	switch {
	case r >= GBps:
		return fmt.Sprintf("%.2f GB/s", r/GBps)
	case r >= MBps:
		return fmt.Sprintf("%.2f MB/s", r/MBps)
	default:
		return fmt.Sprintf("%.0f B/s", r)
	}
}

// Flops formats a FLOP/s rate.
func Flops(f float64) string {
	switch {
	case f >= TFLOP:
		return fmt.Sprintf("%.2f TFLOPS", f/TFLOP)
	case f >= GFLOP:
		return fmt.Sprintf("%.2f GFLOPS", f/GFLOP)
	default:
		return fmt.Sprintf("%.2f MFLOPS", f/MFLOP)
	}
}

// Seconds formats a duration in engineering style.
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3f s", s)
	case s >= Millisecond:
		return fmt.Sprintf("%.3f ms", s/Millisecond)
	default:
		return fmt.Sprintf("%.1f us", s/Microsecond)
	}
}
