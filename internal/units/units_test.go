package units

import (
	"strings"
	"testing"
)

func TestConstants(t *testing.T) {
	if GB != 1e9 || GiB != 1073741824 {
		t.Fatal("byte constants wrong")
	}
	if Gbps*8 != 1e9 {
		t.Fatalf("Gbps = %v bytes/s, want 1e9/8", Gbps)
	}
	if GHz != 1e9 || Millisecond != 1e-3 {
		t.Fatal("time/frequency constants wrong")
	}
}

func TestFormatting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Bytes(1.5 * GB), "1.50 GB"},
		{Bytes(2 * MB), "2.00 MB"},
		{Bytes(3 * KB), "3.00 KB"},
		{Bytes(12), "12 B"},
		{Rate(2.5 * GBps), "2.50 GB/s"},
		{Rate(5 * MBps), "5.00 MB/s"},
		{Flops(1.5 * TFLOP), "1.50 TFLOPS"},
		{Flops(16 * GFLOP), "16.00 GFLOPS"},
		{Flops(250 * MFLOP), "250.00 MFLOPS"},
		{Seconds(1.5), "1.500 s"},
		{Seconds(2 * Millisecond), "2.000 ms"},
		{Seconds(50 * Microsecond), "50.0 us"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestFormattingNeverEmpty(t *testing.T) {
	for _, v := range []float64{0, 1, 999, 1e3, 1e6, 1e9, 1e12, 1e15} {
		for _, s := range []string{Bytes(v), Rate(v), Flops(v), Seconds(v)} {
			if strings.TrimSpace(s) == "" {
				t.Fatalf("empty formatting for %v", v)
			}
		}
	}
}
