package hetsched

import (
	"math"
	"testing"
	"testing/quick"

	"clustersoc/internal/soc"
)

// tx1Engines models a TX1 node the way the Fig. 7 experiment does: the
// GPU plus one CPU core.
func tx1Engines() []Engine {
	node := soc.JetsonTX1()
	return []Engine{
		{Name: "gpu", Flops: node.GPU.PeakFP64() * node.GPU.Efficiency},
		{Name: "cpu-core", Flops: 1.5e9}, // one A57 core on DGEMM
	}
}

func TestStaticAllGPUMatchesSpeed(t *testing.T) {
	engines := tx1Engines()
	res, err := Static(engines, 1e12, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e12 / engines[0].Flops
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %v, want %v", res.Makespan, want)
	}
}

func TestStaticValidation(t *testing.T) {
	engines := tx1Engines()
	if _, err := Static(engines, 1, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Static(engines, 1, []float64{0.7, 0.7}); err == nil {
		t.Fatal("fractions > 1 accepted")
	}
	if _, err := Static(engines, 1, []float64{1.5, -0.5}); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

// The optimal static split balances completion times; any other split is
// no faster.
func TestOptimalFractionBalances(t *testing.T) {
	engines := tx1Engines()
	fr := OptimalFraction(engines)
	res, err := Static(engines, 1e12, fr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Assignments[0].Finish-res.Assignments[1].Finish) > 1e-6*res.Makespan {
		t.Fatal("optimal split should equalize finish times")
	}
	f := func(raw uint8) bool {
		x := float64(raw) / 255
		other, err := Static(engines, 1e12, []float64{x, 1 - x})
		if err != nil {
			return true
		}
		return other.Makespan >= res.Makespan-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Dynamic self-scheduling approaches the optimal static split without
// being told the engine speeds — the answer to the paper's deferred
// scheduling question.
func TestDynamicApproachesOptimal(t *testing.T) {
	engines := tx1Engines()
	total := 1e12
	opt, _ := Static(engines, total, OptimalFraction(engines))
	dyn := Dynamic(engines, SplitTasks(total, 512))
	if dyn.Makespan > opt.Makespan*1.05 {
		t.Fatalf("dynamic %v more than 5%% off optimal %v", dyn.Makespan, opt.Makespan)
	}
	// All work accounted for.
	var flops float64
	for _, a := range dyn.Assignments {
		flops += a.Flops
	}
	if math.Abs(flops-total) > 1 {
		t.Fatalf("lost work: %v of %v", flops, total)
	}
	// The GPU (20x faster than one core) must take the lion's share.
	SortAssignments(dyn.Assignments)
	var gpuShare float64
	for _, a := range dyn.Assignments {
		if a.Engine == "gpu" {
			gpuShare = a.Flops / total
		}
	}
	if gpuShare < 0.8 {
		t.Fatalf("GPU share %v, want > 0.8", gpuShare)
	}
}

// With coarser tasks the dynamic schedule degrades gracefully (never
// better than the fine-grained one by more than rounding, never worse
// than one task's worth).
func TestDynamicGranularity(t *testing.T) {
	engines := tx1Engines()
	total := 1e12
	fine := Dynamic(engines, SplitTasks(total, 1024))
	coarse := Dynamic(engines, SplitTasks(total, 8))
	if coarse.Makespan < fine.Makespan-1e-9 {
		t.Fatal("coarse tasks cannot beat fine tasks")
	}
	maxTask := total / 8 / engines[1].Flops // worst case: last task on the slow core
	if coarse.Makespan > fine.Makespan+maxTask {
		t.Fatalf("coarse schedule worse than list-scheduling bound: %v vs %v + %v",
			coarse.Makespan, fine.Makespan, maxTask)
	}
}

func TestDynamicUsesAllEngines(t *testing.T) {
	// Four equal cores: work splits evenly.
	engines := []Engine{{"a", 1e9}, {"b", 1e9}, {"c", 1e9}, {"d", 1e9}}
	res := Dynamic(engines, SplitTasks(4e9, 400))
	for _, a := range res.Assignments {
		if a.Tasks < 90 || a.Tasks > 110 {
			t.Fatalf("uneven split across equal engines: %+v", res.Assignments)
		}
	}
	if math.Abs(res.Makespan-1.0) > 0.02 {
		t.Fatalf("makespan %v, want ~1s", res.Makespan)
	}
}

func TestThroughput(t *testing.T) {
	engines := tx1Engines()
	res := Dynamic(engines, SplitTasks(1e12, 256))
	tp := res.Throughput()
	sumSpeed := engines[0].Flops + engines[1].Flops
	if tp > sumSpeed || tp < 0.9*sumSpeed {
		t.Fatalf("throughput %v, want close to the aggregate %v", tp, sumSpeed)
	}
}
