// Package hetsched explores the scheduling question the paper raises at
// Fig. 7 and explicitly defers ("workload scheduling in heterogeneous
// systems is not a trivial task"): how to split divisible work between a
// node's CPU cores and its integrated GPU.
//
// It provides two schedulers over the same task model:
//
//   - Static: a fixed GPU:CPU ratio, the paper's Fig. 7 sweep; and
//   - Dynamic: greedy self-scheduling from a shared queue, which finds the
//     throughput-optimal split without knowing the engines' speeds.
//
// The engines are described by their sustained FLOP/s, so the analysis is
// closed-form testable, and the simulated experiment in Run matches it.
package hetsched

import (
	"errors"
	"sort"
)

// Engine is one execution resource (the GPU, or one CPU core).
type Engine struct {
	Name  string
	Flops float64 // sustained FLOP/s on this kernel
}

// Task is one divisible chunk of work.
type Task struct {
	Flops float64
}

// Assignment records which engine ran which tasks.
type Assignment struct {
	Engine string
	Tasks  int
	Flops  float64
	Busy   float64 // seconds of work
	Finish float64 // completion time of the engine's last task
}

// Result is one schedule's outcome.
type Result struct {
	Makespan    float64
	Assignments []Assignment
}

// Throughput returns total FLOPs over the makespan.
func (r Result) Throughput() float64 {
	total := 0.0
	for _, a := range r.Assignments {
		total += a.Flops
	}
	if r.Makespan <= 0 {
		return 0
	}
	return total / r.Makespan
}

// Static splits the total work by fixed fractions (one per engine, must
// sum to ~1) and returns the resulting makespan: each engine processes
// its share sequentially.
func Static(engines []Engine, totalFlops float64, fractions []float64) (Result, error) {
	if len(engines) != len(fractions) {
		return Result{}, errors.New("hetsched: one fraction per engine")
	}
	sum := 0.0
	for _, f := range fractions {
		if f < 0 {
			return Result{}, errors.New("hetsched: negative fraction")
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return Result{}, errors.New("hetsched: fractions must sum to 1")
	}
	res := Result{}
	for i, e := range engines {
		fl := totalFlops * fractions[i]
		t := 0.0
		if e.Flops > 0 {
			t = fl / e.Flops
		}
		res.Assignments = append(res.Assignments, Assignment{
			Engine: e.Name, Flops: fl, Busy: t, Finish: t,
		})
		if t > res.Makespan {
			res.Makespan = t
		}
	}
	return res, nil
}

// Dynamic self-schedules the task list: whenever an engine is free it
// takes the next task from the queue. Greedy list scheduling — the
// 2-approximation that in practice lands within one task of optimal for
// divisible work.
func Dynamic(engines []Engine, tasks []Task) Result {
	res := Result{Assignments: make([]Assignment, len(engines))}
	free := make([]float64, len(engines))
	for i, e := range engines {
		res.Assignments[i].Engine = e.Name
	}
	for _, task := range tasks {
		// Pick the engine that would finish this task first.
		best, bestFinish := -1, 0.0
		for i, e := range engines {
			if e.Flops <= 0 {
				continue
			}
			finish := free[i] + task.Flops/e.Flops
			if best == -1 || finish < bestFinish {
				best, bestFinish = i, finish
			}
		}
		if best == -1 {
			break
		}
		free[best] = bestFinish
		a := &res.Assignments[best]
		a.Tasks++
		a.Flops += task.Flops
		a.Busy += task.Flops / engines[best].Flops
		a.Finish = bestFinish
	}
	for _, fr := range free {
		if fr > res.Makespan {
			res.Makespan = fr
		}
	}
	return res
}

// OptimalFraction returns the makespan-optimal work fraction for each
// engine: proportional to its speed.
func OptimalFraction(engines []Engine) []float64 {
	total := 0.0
	for _, e := range engines {
		total += e.Flops
	}
	out := make([]float64, len(engines))
	if total == 0 {
		return out
	}
	for i, e := range engines {
		out[i] = e.Flops / total
	}
	return out
}

// SplitTasks divides totalFlops into n equal tasks.
func SplitTasks(totalFlops float64, n int) []Task {
	if n < 1 {
		n = 1
	}
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{Flops: totalFlops / float64(n)}
	}
	return out
}

// SortAssignments orders by engine name for stable output.
func SortAssignments(as []Assignment) {
	sort.Slice(as, func(i, j int) bool { return as[i].Engine < as[j].Engine })
}
