// Package dimemas replays execution traces under modified conditions, the
// way the paper uses the DIMEMAS high-level network simulator (Sec.
// III-B.4): the same dependency structure is re-timed with a different
// network (including the ideal zero-latency, unlimited-bandwidth network)
// or with the load artificially balanced across ranks, isolating each
// scalability factor.
//
// It also computes the parallel-efficiency decomposition of Rosas et al.,
// equation (4) of the paper:
//
//	eta = LB * Ser * Trf
//
// where LB measures load balance, Ser the serialization imposed by
// dependencies even on an ideal network, and Trf the cost of actual data
// transfers.
package dimemas

import (
	"fmt"

	"clustersoc/internal/trace"
)

// NetworkModel parameterizes the replay network (DIMEMAS's simple model:
// per-message latency plus bytes/bandwidth, no contention).
type NetworkModel struct {
	Name           string
	Bandwidth      float64 // bytes/second between distinct nodes
	Latency        float64 // seconds per inter-node message
	IntraBandwidth float64 // bytes/second between ranks on one node
	IntraLatency   float64
}

// IdealNetwork is the zero-latency, unlimited-bandwidth scenario.
var IdealNetwork = NetworkModel{
	Name:           "ideal",
	Bandwidth:      1e18,
	Latency:        0,
	IntraBandwidth: 1e18,
	IntraLatency:   0,
}

// Options modifies a replay.
type Options struct {
	Net NetworkModel
	// IdealLoadBalance rescales every rank's compute time within each
	// phase to the phase mean (LB = 1), leaving copies and messages alone.
	IdealLoadBalance bool
	// Buses limits how many inter-node transfers can be in flight at once
	// — DIMEMAS's classic "number of buses" contention parameter. Zero
	// means unlimited (the L1 contention-free model).
	Buses int
}

type matchKey struct{ src, dst, tag int }

// Replay re-times the trace under opts and returns the simulated runtime.
// It panics on a malformed trace (unmatched receives), which in this
// codebase indicates a recording bug rather than an input condition.
func Replay(t *trace.Trace, opts Options) float64 {
	n := len(t.Ranks)
	scale := computeScales(t, opts.IdealLoadBalance)

	clocks := make([]float64, n)
	idx := make([]int, n)
	phase := make([]int, n)
	arrivals := make(map[matchKey][]float64)
	// Bus contention: each inter-node transfer books the earliest-free
	// bus. With Buses == 0 the slice stays empty and transfers never wait.
	var buses []float64
	if opts.Buses > 0 {
		buses = make([]float64, opts.Buses)
	}

	remaining := 0
	for _, r := range t.Ranks {
		remaining += len(r.Ops)
	}
	for remaining > 0 {
		progress := false
		for r := 0; r < n; r++ {
			rt := t.Ranks[r]
			stuck := false
			for idx[r] < len(rt.Ops) && !stuck {
				op := rt.Ops[idx[r]]
				switch op.Kind {
				case trace.OpCompute:
					clocks[r] += op.Dur * scale[r][phase[r]]
				case trace.OpCopy:
					clocks[r] += op.Dur
				case trace.OpPhase:
					phase[r]++
				case trace.OpSend:
					bw, lat := opts.Net.Bandwidth, opts.Net.Latency
					intra := t.Ranks[op.Peer].Node == rt.Node
					if intra {
						bw, lat = opts.Net.IntraBandwidth, opts.Net.IntraLatency
					}
					start := clocks[r]
					if len(buses) > 0 && !intra {
						// Claim the earliest-free bus (DIMEMAS contention).
						bi := 0
						for i := 1; i < len(buses); i++ {
							if buses[i] < buses[bi] {
								bi = i
							}
						}
						if buses[bi] > start {
							start = buses[bi]
						}
						buses[bi] = start + op.Bytes/bw
					}
					drain := start + op.Bytes/bw
					k := matchKey{r, op.Peer, op.Tag}
					arrivals[k] = append(arrivals[k], drain+lat)
					clocks[r] = drain
				case trace.OpRecv:
					k := matchKey{op.Peer, r, op.Tag}
					q := arrivals[k]
					if len(q) == 0 {
						stuck = true // sender not replayed yet; revisit next pass
						continue
					}
					arrivals[k] = q[1:]
					if q[0] > clocks[r] {
						clocks[r] = q[0]
					}
				}
				idx[r]++
				remaining--
				progress = true
			}
		}
		if !progress {
			panic(fmt.Sprintf("dimemas: replay deadlock with %d ops remaining", remaining))
		}
	}
	max := 0.0
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// computeScales returns per-rank, per-phase multipliers for compute time.
// Without ideal load balance all factors are 1; with it, each rank's
// compute in a phase is scaled to the phase mean.
func computeScales(t *trace.Trace, ideal bool) [][]float64 {
	n := len(t.Ranks)
	// Count phases and per-phase compute per rank.
	perRank := make([][]float64, n)
	maxPhases := 1
	for i, r := range t.Ranks {
		cur := 0.0
		for _, op := range r.Ops {
			switch op.Kind {
			case trace.OpCompute:
				cur += op.Dur
			case trace.OpPhase:
				perRank[i] = append(perRank[i], cur)
				cur = 0
			}
		}
		perRank[i] = append(perRank[i], cur)
		if len(perRank[i]) > maxPhases {
			maxPhases = len(perRank[i])
		}
	}
	scale := make([][]float64, n)
	for i := range scale {
		scale[i] = make([]float64, maxPhases)
		for j := range scale[i] {
			scale[i][j] = 1
		}
	}
	if !ideal {
		return scale
	}
	for ph := 0; ph < maxPhases; ph++ {
		sum, cnt := 0.0, 0
		for i := 0; i < n; i++ {
			if ph < len(perRank[i]) {
				sum += perRank[i][ph]
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		mean := sum / float64(cnt)
		for i := 0; i < n; i++ {
			if ph < len(perRank[i]) && perRank[i][ph] > 0 {
				scale[i][ph] = mean / perRank[i][ph]
			}
		}
	}
	return scale
}

// Efficiency is the eta = LB * Ser * Trf decomposition for one traced run.
type Efficiency struct {
	LB  float64 // load balance: mean(C_i)/max(C_i)
	Ser float64 // serialization: max(C_i)/T_ideal
	Trf float64 // transfer: T_ideal/T_measured
	Eta float64
	// TIdeal is the ideal-network replay runtime; TMeasured the real one.
	TIdeal    float64
	TMeasured float64
}

// Decompose computes the efficiency factors of a traced run whose measured
// runtime is t.Runtime.
func Decompose(t *trace.Trace) Efficiency {
	comp := t.ComputeSeconds()
	sum, max := 0.0, 0.0
	for _, c := range comp {
		sum += c
		if c > max {
			max = c
		}
	}
	mean := sum / float64(len(comp))
	tIdeal := Replay(t, Options{Net: IdealNetwork})
	e := Efficiency{
		TIdeal:    tIdeal,
		TMeasured: t.Runtime,
	}
	if max > 0 {
		e.LB = mean / max
	}
	if tIdeal > 0 {
		e.Ser = clamp01(max / tIdeal)
	}
	if t.Runtime > 0 {
		e.Trf = clamp01(tIdeal / t.Runtime)
	}
	e.Eta = e.LB * e.Ser * e.Trf
	return e
}

func clamp01(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < 0 {
		return 0
	}
	return x
}
