package dimemas

import (
	"math"
	"testing"

	"clustersoc/internal/mpi"
	"clustersoc/internal/network"
	"clustersoc/internal/sim"
	"clustersoc/internal/trace"
	"clustersoc/internal/units"
)

// traceRun executes a per-rank body with tracing on an n-node cluster and
// returns the trace (Runtime stamped).
func traceRun(n int, prof network.Profile, body func(p *sim.Process, tr *trace.Tracer, c *mpi.Comm, rank int)) *trace.Trace {
	e := sim.NewEngine()
	nw := network.New(e, n, prof)
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	c := mpi.NewComm(e, nw, nodes)
	tr := trace.New(nodes)
	c.SetRecorder(tr)
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Process) { body(p, tr, c, r) })
	}
	runtime := e.Run()
	tr.Finish(runtime)
	return &tr.T
}

// A balanced iterative halo-exchange benchmark: compute then exchange with
// ring neighbours.
func ringWorkload(computeSec float64, iters int, haloBytes float64, imbalance func(rank int) float64) func(p *sim.Process, tr *trace.Tracer, c *mpi.Comm, rank int) {
	return func(p *sim.Process, tr *trace.Tracer, c *mpi.Comm, rank int) {
		n := c.Size()
		for it := 0; it < iters; it++ {
			d := computeSec * imbalance(rank)
			start := p.Now()
			p.Sleep(d)
			tr.RecordCompute(rank, d, start)
			right := (rank + 1) % n
			left := (rank - 1 + n) % n
			c.Sendrecv(p, rank, right, left, it+1, haloBytes, haloBytes)
			tr.RecordPhase(rank, p.Now())
		}
	}
}

func balanced(int) float64 { return 1 }

func TestReplayIdentityReproducesRuntime(t *testing.T) {
	tr := traceRun(4, network.GigE, ringWorkload(0.01, 10, 1*units.MB, balanced))
	replayed := Replay(tr, Options{Net: NetworkModel{
		Name:           "1GbE",
		Bandwidth:      network.GigE.Throughput,
		Latency:        network.GigE.Latency,
		IntraBandwidth: network.MemoryPathBandwidth,
		IntraLatency:   network.MemoryPathLatency,
	}})
	if math.Abs(replayed-tr.Runtime)/tr.Runtime > 0.05 {
		t.Fatalf("identity replay %.5f vs measured %.5f (>5%% off)", replayed, tr.Runtime)
	}
}

func TestIdealNetworkNeverSlower(t *testing.T) {
	tr := traceRun(4, network.GigE, ringWorkload(0.002, 10, 4*units.MB, balanced))
	ideal := Replay(tr, Options{Net: IdealNetwork})
	if ideal > tr.Runtime {
		t.Fatalf("ideal network replay %.5f slower than measured %.5f", ideal, tr.Runtime)
	}
	// This workload is network-dominated: ideal network should be a large win.
	if tr.Runtime/ideal < 2 {
		t.Errorf("network-bound workload only improved %.2fx on ideal network", tr.Runtime/ideal)
	}
}

func TestIdealLoadBalanceHelpsImbalancedRun(t *testing.T) {
	skew := func(rank int) float64 { return 1 + float64(rank)*0.5 } // rank 3 does 2.5x work
	tr := traceRun(4, network.TenGigE, ringWorkload(0.01, 10, 10*units.KB, skew))
	real := NetworkModel{
		Name:           "10GbE",
		Bandwidth:      network.TenGigE.Throughput,
		Latency:        network.TenGigE.Latency,
		IntraBandwidth: network.MemoryPathBandwidth,
		IntraLatency:   network.MemoryPathLatency,
	}
	base := Replay(tr, Options{Net: real})
	lb := Replay(tr, Options{Net: real, IdealLoadBalance: true})
	if lb >= base {
		t.Fatalf("ideal LB replay %.5f not faster than base %.5f", lb, base)
	}
	// Perfectly balancing a 2.5x skew should approach the mean: speedup
	// toward max/mean = 2.5/1.75 ~ 1.43.
	if base/lb < 1.2 {
		t.Errorf("ideal LB speedup only %.2f", base/lb)
	}
}

func TestIdealLoadBalanceNoopOnBalancedRun(t *testing.T) {
	tr := traceRun(4, network.TenGigE, ringWorkload(0.01, 5, 10*units.KB, balanced))
	real := Options{Net: IdealNetwork}
	balancedOpts := Options{Net: IdealNetwork, IdealLoadBalance: true}
	a, b := Replay(tr, real), Replay(tr, balancedOpts)
	if math.Abs(a-b)/a > 1e-9 {
		t.Fatalf("ideal LB changed a balanced run: %v vs %v", a, b)
	}
}

func TestDecomposeBounds(t *testing.T) {
	skew := func(rank int) float64 { return 1 + float64(rank)*0.3 }
	tr := traceRun(4, network.GigE, ringWorkload(0.005, 10, 2*units.MB, skew))
	e := Decompose(tr)
	for name, v := range map[string]float64{"LB": e.LB, "Ser": e.Ser, "Trf": e.Trf, "Eta": e.Eta} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of [0,1]", name, v)
		}
	}
	if math.Abs(e.Eta-e.LB*e.Ser*e.Trf) > 1e-12 {
		t.Error("Eta != LB*Ser*Trf")
	}
	// The skewed workload must show LB < 1; the 1 GbE halo traffic must
	// show Trf < 1.
	if e.LB > 0.95 {
		t.Errorf("LB = %v for a skewed run", e.LB)
	}
	if e.Trf > 0.95 {
		t.Errorf("Trf = %v for a network-heavy 1GbE run", e.Trf)
	}
}

// Eta should equal the direct parallel efficiency (sum of compute) / (P *
// runtime) up to the clamping — the decomposition's defining identity.
func TestDecompositionIdentity(t *testing.T) {
	tr := traceRun(4, network.GigE, ringWorkload(0.01, 8, 1*units.MB, func(r int) float64 { return 1 + 0.2*float64(r) }))
	e := Decompose(tr)
	comp := tr.ComputeSeconds()
	sum := 0.0
	for _, c := range comp {
		sum += c
	}
	direct := sum / (float64(len(comp)) * tr.Runtime)
	if math.Abs(e.Eta-direct)/direct > 0.05 {
		t.Fatalf("Eta %.4f vs direct efficiency %.4f", e.Eta, direct)
	}
}

func TestPhaseChopping(t *testing.T) {
	tr := traceRun(3, network.TenGigE, ringWorkload(0.01, 4, 1000, balanced))
	phases := tr.Phases()
	// 4 phase markers => 5 entries (last is the empty tail).
	if len(phases) != 5 {
		t.Fatalf("got %d phases, want 5", len(phases))
	}
	for ph := 0; ph < 4; ph++ {
		for r, v := range phases[ph] {
			if math.Abs(v-0.01) > 1e-9 {
				t.Fatalf("phase %d rank %d compute = %v, want 0.01", ph, r, v)
			}
		}
	}
}

func TestReplayUnmatchedRecvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unmatched recv")
		}
	}()
	tr := &trace.Trace{Ranks: []*trace.RankTrace{
		{Rank: 0, Node: 0, Ops: []trace.Op{{Kind: trace.OpRecv, Peer: 1, Tag: 1}}},
		{Rank: 1, Node: 1},
	}, Runtime: 1}
	Replay(tr, Options{Net: IdealNetwork})
}

// The DIMEMAS bus-contention model: unlimited buses matches the default
// model; one bus serializes all inter-node transfers and can only slow
// the replay down; more buses monotonically release the pressure.
func TestBusContention(t *testing.T) {
	tr := traceRun(4, network.GigE, ringWorkload(0.001, 8, 2*units.MB, balanced))
	net := NetworkModel{
		Name:           "1GbE",
		Bandwidth:      network.GigE.Throughput,
		Latency:        network.GigE.Latency,
		IntraBandwidth: network.MemoryPathBandwidth,
		IntraLatency:   network.MemoryPathLatency,
	}
	free := Replay(tr, Options{Net: net})
	unlimited := Replay(tr, Options{Net: net, Buses: 1 << 20})
	if math.Abs(free-unlimited)/free > 1e-9 {
		t.Fatalf("huge bus count (%v) should match the free model (%v)", unlimited, free)
	}
	one := Replay(tr, Options{Net: net, Buses: 1})
	two := Replay(tr, Options{Net: net, Buses: 2})
	if one < free {
		t.Fatalf("one bus (%v) cannot beat the contention-free model (%v)", one, free)
	}
	if one < two-1e-12 {
		t.Fatalf("more buses should not slow the replay: 1 bus %v vs 2 buses %v", one, two)
	}
	// This ring workload keeps 4 transfers in flight; one bus must
	// actually hurt.
	if one < free*1.5 {
		t.Errorf("single-bus replay %v suspiciously close to free %v", one, free)
	}
}
