package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, schema int) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), schema)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, 1)
	payload := []byte(`{"hello":"world"}`)
	if err := s.Put("key-a", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("key-a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload changed in round trip: %q", got)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Writes != 1 || c.Misses != 0 || c.Corrupt != 0 {
		t.Fatalf("counters after hit: %+v", c)
	}
}

func TestGetMissOnAbsentKey(t *testing.T) {
	s := open(t, 1)
	if _, err := s.Get("never-written"); !errors.Is(err, ErrMiss) {
		t.Fatalf("want ErrMiss, got %v", err)
	}
	if c := s.Counters(); c.Misses != 1 || c.Corrupt != 0 {
		t.Fatalf("counters after miss: %+v", c)
	}
}

// entryFile locates the single *.entry file under the store directory.
func entryFile(t *testing.T, s *Store) string {
	t.Helper()
	var path string
	err := filepath.Walk(s.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".entry") {
			path = p
		}
		return err
	})
	if err != nil || path == "" {
		t.Fatalf("no entry file found under %s (err %v)", s.Dir(), err)
	}
	return path
}

// TestCorruptEntriesReadAsCorrupt damages one stored entry every way the
// container format can detect — truncation, zero bytes, a flipped
// payload bit, a wrong container version, a wrong schema tag, a missing
// header — and requires Get to answer ErrCorrupt (a miss that callers
// repair by re-simulating and rewriting) rather than serving bad bytes.
func TestCorruptEntriesReadAsCorrupt(t *testing.T) {
	payload := []byte(`{"result":42}`)
	damage := []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"zero-byte entry", func([]byte) []byte { return nil }},
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-4] }},
		{"truncated mid-header", func(d []byte) []byte { return d[:10] }},
		{"flipped payload byte", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)-2] ^= 0x40
			return out
		}},
		{"wrong container version", func(d []byte) []byte {
			return bytes.Replace(d, []byte("clustersoc-store v1 "), []byte("clustersoc-store v9 "), 1)
		}},
		{"wrong schema tag", func(d []byte) []byte {
			return bytes.Replace(d, []byte("schema=7"), []byte("schema=8"), 1)
		}},
		{"no header at all", func([]byte) []byte { return []byte("free-form garbage\nwithout a header") }},
	}
	for _, tc := range damage {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, 7)
			if err := s.Put("the-key", payload); err != nil {
				t.Fatal(err)
			}
			path := entryFile(t, s)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mutated := tc.mut(data)
			if bytes.Equal(mutated, data) {
				t.Fatal("mutation did not change the entry — test is vacuous")
			}
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("the-key"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
			if c := s.Counters(); c.Corrupt != 1 {
				t.Fatalf("corrupt counter not bumped: %+v", c)
			}
			// The repair path: rewrite and read back.
			if err := s.Put("the-key", payload); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("the-key")
			if err != nil {
				t.Fatalf("entry not repaired by rewrite: %v", err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("repaired payload wrong: %q", got)
			}
		})
	}
}

func TestPutReplacesEntryAtomically(t *testing.T) {
	s := open(t, 1)
	if err := s.Put("k", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("got %q after overwrite", got)
	}
	// No staging litter left behind.
	err = filepath.Walk(s.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.Contains(filepath.Base(p), ".staging-") {
			t.Fatalf("staging file left behind: %s", p)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSchemaReAddressesKeys pins the version-bump rule: the schema
// participates in the content address, so entries written under one
// schema are unreachable — not corrupt, plainly absent — under another.
func TestSchemaReAddressesKeys(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", []byte("v1 payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("k"); !errors.Is(err, ErrMiss) {
		t.Fatalf("schema 2 should miss schema 1's entry, got %v", err)
	}
	if got, err := s1.Get("k"); err != nil || string(got) != "v1 payload" {
		t.Fatalf("schema 1 entry disturbed: %q, %v", got, err)
	}
}

func TestInvalidateRemovesAndCountsCorrupt(t *testing.T) {
	s := open(t, 1)
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.Invalidate("k")
	if _, err := s.Get("k"); !errors.Is(err, ErrMiss) {
		t.Fatalf("invalidated entry should miss, got %v", err)
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("corrupt counter after Invalidate: %+v", c)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	s := open(t, 1)
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Peek("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Peek("absent"); !errors.Is(err, ErrMiss) {
		t.Fatalf("want ErrMiss, got %v", err)
	}
	if c := s.Counters(); c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("Peek must not count: %+v", c)
	}
}

func TestLockProtocol(t *testing.T) {
	s := open(t, 1)
	rel, ok := s.TryLock("k")
	if !ok {
		t.Fatal("first TryLock must succeed")
	}
	if _, ok := s.TryLock("k"); ok {
		t.Fatal("second TryLock must fail while held")
	}
	// A held lock on one key does not block another key.
	rel2, ok := s.TryLock("other")
	if !ok {
		t.Fatal("lock on a different key must succeed")
	}
	rel2()

	s.SetPollInterval(time.Millisecond)
	if s.WaitUnlocked("k", time.Now().Add(20*time.Millisecond)) {
		t.Fatal("WaitUnlocked must time out while the lock is held")
	}
	rel()
	if !s.WaitUnlocked("k", time.Now().Add(time.Second)) {
		t.Fatal("WaitUnlocked must observe the release")
	}
	if rel3, ok := s.TryLock("k"); !ok {
		t.Fatal("TryLock must succeed after release")
	} else {
		rel3()
	}
}

func TestStaleLockIsStolen(t *testing.T) {
	s := open(t, 1)
	if _, ok := s.TryLock("k"); !ok {
		t.Fatal("setup lock failed")
	}
	// The "holder" dies without releasing. With a zero stale age the
	// next contender steals the lock instead of waiting forever.
	s.SetStaleLockAfter(0)
	rel, ok := s.TryLock("k")
	if !ok {
		t.Fatal("stale lock must be stolen")
	}
	rel()
}

func TestSnapshotIsNonDeterministicStoreScope(t *testing.T) {
	s := open(t, 1)
	s.Put("k", []byte("x"))
	s.Get("k")
	s.Get("absent")
	snap := s.Snapshot()
	want := map[string]float64{
		"store.hit":     1,
		"store.miss":    1,
		"store.write":   1,
		"store.corrupt": 0,
	}
	for name, v := range want {
		m, ok := snap.Get(name)
		if !ok {
			t.Fatalf("snapshot missing %s", name)
		}
		if m.Value != v {
			t.Fatalf("%s = %v, want %v", name, m.Value, v)
		}
		if !m.NonDeterministic {
			t.Fatalf("%s must be flagged non-deterministic: disk state varies run to run", name)
		}
	}
	if len(snap.Deterministic().Metrics) != 0 {
		t.Fatal("store metrics must all be stripped from deterministic snapshots")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", 1); err == nil {
		t.Fatal("Open(\"\") must fail")
	}
}

// TestConfigSettersSafeUnderConcurrentUse pins the "safe for concurrent
// use" contract on the lock-protocol knobs: a long-running server
// reconfigures the shared Store while request goroutines are inside
// TryLock/WaitUnlocked. Before the knobs became atomic this was a data
// race the -race CI job catches.
func TestConfigSettersSafeUnderConcurrentUse(t *testing.T) {
	s := open(t, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				d := time.Duration(j%7+1) * time.Millisecond
				s.SetLockWait(d)
				s.SetPollInterval(d)
				s.SetStaleLockAfter(d)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := "concurrent-key"
			for j := 0; j < 200; j++ {
				if rel, ok := s.TryLock(key); ok {
					rel()
				}
				s.WaitUnlocked(key, time.Now().Add(-time.Second))
				_ = s.LockWait()
				_ = s.PollInterval()
				_ = s.StaleLockAfter()
			}
		}(i)
	}
	// Let the TryLock/WaitUnlocked goroutines finish, then stop the
	// reconfiguration loops.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(200 * time.Millisecond)
		close(stop)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent setter/lock exercise did not finish")
	}
	if s.LockWait() <= 0 || s.PollInterval() <= 0 || s.StaleLockAfter() <= 0 {
		t.Fatal("configured durations lost")
	}
}

// TestReadOnlyModeDeclinesMutations pins the read-only contract: reads
// serve as usual, Put fails with ErrReadOnly, TryLock refuses (without
// creating lock files), and Invalidate leaves the entry on disk.
func TestReadOnlyModeDeclinesMutations(t *testing.T) {
	s := open(t, 1)
	payload := []byte(`{"k":1}`)
	if err := s.Put("ro-key", payload); err != nil {
		t.Fatal(err)
	}
	s.SetReadOnly(true)
	if !s.ReadOnly() {
		t.Fatal("ReadOnly not reported")
	}
	got, err := s.Get("ro-key")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read-only Get = %q, %v; want the stored payload", got, err)
	}
	if err := s.Put("ro-key2", payload); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put error = %v, want ErrReadOnly", err)
	}
	if _, ok := s.TryLock("ro-key2"); ok {
		t.Fatal("read-only TryLock must refuse")
	}
	if s.Locked("ro-key2") {
		t.Fatal("read-only TryLock must not leave a lock file behind")
	}
	s.Invalidate("ro-key")
	if _, err := s.Get("ro-key"); err != nil {
		t.Fatalf("read-only Invalidate must leave the entry: %v", err)
	}
	s.SetReadOnly(false)
	if err := s.Put("ro-key2", payload); err != nil {
		t.Fatalf("writable again: %v", err)
	}
}

// TestLockedReportsLockFilePresence pins the Locked probe the run-plane
// uses to tell "live holder" from "filesystem refuses locks".
func TestLockedReportsLockFilePresence(t *testing.T) {
	s := open(t, 1)
	if s.Locked("k") {
		t.Fatal("no lock taken yet")
	}
	rel, ok := s.TryLock("k")
	if !ok {
		t.Fatal("TryLock failed on a fresh store")
	}
	if !s.Locked("k") {
		t.Fatal("Locked must see the held lock")
	}
	rel()
	if s.Locked("k") {
		t.Fatal("Locked must see the release")
	}
}
