// Package store is a persistent, content-addressed result store: a
// directory of immutable entries keyed by an arbitrary string key (the
// run-plane uses runner.Scenario fingerprints) plus a caller-declared
// schema version. Simulations are bit-deterministic, so an entry written
// once is valid forever — the store never invalidates; schema changes are
// handled by bumping the version, which re-addresses every key.
//
// Three properties are load-bearing:
//
//   - Atomic writes. Put stages the entry in a temp file in the target
//     directory and renames it into place, so readers only ever observe
//     absent or complete entries — never a half-written one — and
//     concurrent writers of the same (deterministic, identical) entry
//     simply race to install equal bytes.
//
//   - Corruption-tolerant reads. Every entry carries a header with the
//     container version, schema version, payload length, and a SHA-256
//     payload digest. A truncated, tampered, zero-byte, or wrong-version
//     entry fails verification and reads as ErrCorrupt — callers treat it
//     as a miss, re-simulate, and rewrite. A damaged store degrades to a
//     cold one; it never serves wrong bytes.
//
//   - Cross-process singleflight. TryLock/WaitUnlocked implement a
//     per-key lock-file protocol (O_CREATE|O_EXCL) so N processes
//     sweeping the same scenario grid simulate each scenario once: the
//     first locks and simulates, the rest wait and decode its entry. The
//     lock is purely an optimization — a crashed holder's stale lock is
//     stolen after StaleLockAfter, and a waiter that outlives LockWait
//     simulates without the lock, which is always correct because writes
//     are atomic and deterministic entries are interchangeable.
//
// The store's counters (hits, misses, writes, corrupt) are process-level
// host-side accounting: non-deterministic by nature (they depend on what
// is on disk), they are exposed via Counters/Summary and as a
// NonDeterministic "store" obs scope through Snapshot, and never enter
// result artifacts.
package store

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"clustersoc/internal/obs"
)

// FormatVersion is the on-disk container version (the header layout).
// Bumped on incompatible container changes; entries with another version
// read as corrupt and are rewritten.
const FormatVersion = 1

// ErrMiss reports an absent entry.
var ErrMiss = errors.New("store: entry not present")

// ErrCorrupt reports an entry that exists but fails verification —
// truncated, tampered, zero-byte, or written under another version.
// Callers treat it as a miss and rewrite it.
var ErrCorrupt = errors.New("store: entry corrupt")

// ErrReadOnly reports a mutation declined by a read-only store
// (SetReadOnly): the entry was not written, the disk is untouched.
var ErrReadOnly = errors.New("store: read-only")

// Counters is a snapshot of the store's accounting.
type Counters struct {
	// Hits counts Gets that returned a verified payload.
	Hits uint64
	// Misses counts Gets that found no entry.
	Misses uint64
	// Writes counts entries installed by Put.
	Writes uint64
	// Corrupt counts entries that failed verification on Get plus
	// payload-level invalidations reported via Invalidate.
	Corrupt uint64
}

// Store is a content-addressed entry store rooted at one directory. All
// methods are safe for concurrent use from multiple goroutines and, by
// construction, multiple processes sharing the directory.
type Store struct {
	dir    string
	schema int

	// The lock-protocol knobs are atomic durations (nanoseconds): the
	// Set* methods may be called while other goroutines are inside
	// TryLock/WaitUnlocked — a long-running server reconfiguring a Store
	// shared across request goroutines — and plain fields would race.
	lockWait   atomic.Int64
	poll       atomic.Int64
	staleAfter atomic.Int64
	readOnly   atomic.Bool

	hits    atomic.Uint64
	misses  atomic.Uint64
	writes  atomic.Uint64
	corrupt atomic.Uint64
}

// Open roots a store at dir (created if absent) for entries of the given
// payload schema version. The schema participates in every entry's
// address, so bumping it re-addresses the whole keyspace: old entries
// are simply never looked up again, and mixed-version processes sharing
// one directory never serve each other's payloads.
func Open(dir string, schema int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, schema: schema}
	s.lockWait.Store(int64(60 * time.Second))
	s.poll.Store(int64(10 * time.Millisecond))
	s.staleAfter.Store(int64(10 * time.Minute))
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Schema returns the payload schema version the store addresses with.
func (s *Store) Schema() int { return s.schema }

// LockWait returns how long a caller should wait on another process's
// per-key lock before giving up and simulating without it.
func (s *Store) LockWait() time.Duration { return time.Duration(s.lockWait.Load()) }

// SetLockWait bounds the singleflight wait on a foreign lock. Past the
// bound callers proceed without the lock (correct, just duplicated work).
// Safe to call while other goroutines use the store.
func (s *Store) SetLockWait(d time.Duration) { s.lockWait.Store(int64(d)) }

// PollInterval returns the lock-wait polling period.
func (s *Store) PollInterval() time.Duration { return time.Duration(s.poll.Load()) }

// SetPollInterval sets the lock-wait polling period. Safe to call while
// other goroutines use the store.
func (s *Store) SetPollInterval(d time.Duration) { s.poll.Store(int64(d)) }

// StaleLockAfter returns the age past which a lock file is presumed
// abandoned.
func (s *Store) StaleLockAfter() time.Duration { return time.Duration(s.staleAfter.Load()) }

// SetStaleLockAfter sets the age past which a lock file is presumed
// abandoned by a dead process and is stolen. Safe to call while other
// goroutines use the store.
func (s *Store) SetStaleLockAfter(d time.Duration) { s.staleAfter.Store(int64(d)) }

// SetReadOnly switches the store into (or out of) read-only mode: Get
// and Peek serve entries as usual, while Put and Invalidate return
// ErrReadOnly (or silently decline) and TryLock refuses to create lock
// files. Replicas serving a shared warm store they must not scribble on
// (a read-only mount, an operator-frozen cache) run in this mode; the
// run-plane falls through to simulation for anything the store lacks.
func (s *Store) SetReadOnly(on bool) { s.readOnly.Store(on) }

// ReadOnly reports whether the store declines mutations.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// address returns the content address of key under the store's schema:
// the hex SHA-256 of (container version, schema version, key), sharded
// into a two-character subdirectory to keep directories shallow.
func (s *Store) address(key string) (shard, base string) {
	h := sha256.Sum256([]byte(fmt.Sprintf("clustersoc-store\x00v%d\x00schema%d\x00%s", FormatVersion, s.schema, key)))
	hex := fmt.Sprintf("%x", h)
	return filepath.Join(s.dir, hex[:2]), hex
}

func (s *Store) entryPath(key string) string {
	shard, base := s.address(key)
	return filepath.Join(shard, base+".entry")
}

func (s *Store) lockPath(key string) string {
	shard, base := s.address(key)
	return filepath.Join(shard, base+".lock")
}

// header renders the entry header line for a payload.
func (s *Store) header(payload []byte) string {
	return fmt.Sprintf("clustersoc-store v%d schema=%d len=%d sha256=%x\n",
		FormatVersion, s.schema, len(payload), sha256.Sum256(payload))
}

// verify splits an entry file into header and payload and checks every
// header field against the payload bytes.
func (s *Store) verify(data []byte) ([]byte, error) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("%w: no header", ErrCorrupt)
	}
	header, payload := string(data[:nl]), data[nl+1:]
	var version, schema, length int
	var sum string
	if n, err := fmt.Sscanf(header, "clustersoc-store v%d schema=%d len=%d sha256=%s",
		&version, &schema, &length, &sum); n != 4 || err != nil {
		return nil, fmt.Errorf("%w: bad header %q", ErrCorrupt, header)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: container version %d (want %d)", ErrCorrupt, version, FormatVersion)
	}
	if schema != s.schema {
		return nil, fmt.Errorf("%w: schema version %d (want %d)", ErrCorrupt, schema, s.schema)
	}
	if length != len(payload) {
		return nil, fmt.Errorf("%w: payload truncated (%d of %d bytes)", ErrCorrupt, len(payload), length)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(payload)); !strings.EqualFold(got, sum) {
		return nil, fmt.Errorf("%w: payload digest mismatch", ErrCorrupt)
	}
	return payload, nil
}

// read loads and verifies an entry without touching the counters.
func (s *Store) read(key string) ([]byte, error) {
	data, err := os.ReadFile(s.entryPath(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrMiss
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: zero-byte entry", ErrCorrupt)
	}
	return s.verify(data)
}

// Get returns the verified payload stored under key. ErrMiss means no
// entry; ErrCorrupt means an entry exists but fails verification —
// treat it as a miss and rewrite it. Counted.
func (s *Store) Get(key string) ([]byte, error) {
	payload, err := s.read(key)
	switch {
	case err == nil:
		s.hits.Add(1)
	case errors.Is(err, ErrCorrupt):
		s.corrupt.Add(1)
	default:
		s.misses.Add(1)
	}
	return payload, err
}

// Peek is Get without counter accounting — for merge reads and
// inspection tools that should not skew the hit/miss statistics.
func (s *Store) Peek(key string) ([]byte, error) { return s.read(key) }

// Put atomically installs payload under key: the entry is staged in a
// temp file in the target shard and renamed into place, so concurrent
// readers observe either the old entry, the new one, or none — never a
// torn write. Re-putting a key replaces its entry.
func (s *Store) Put(key string, payload []byte) error {
	if s.ReadOnly() {
		return ErrReadOnly
	}
	shard, _ := s.address(key)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".staging-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(s.header(payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.entryPath(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Invalidate removes key's entry and counts it corrupt. Callers use it
// when the container verified but the payload inside failed to decode
// (a payload-level corruption the container checksum cannot see, e.g. a
// manually edited entry).
func (s *Store) Invalidate(key string) {
	s.corrupt.Add(1)
	if s.ReadOnly() {
		return
	}
	os.Remove(s.entryPath(key))
}

// TryLock attempts to take key's cross-process singleflight lock.
// On success it returns a release function (remove the lock after
// persisting the entry). A lock file older than StaleLockAfter is
// presumed abandoned and stolen. The lock is advisory and exists only to
// avoid duplicate work — losing a race on a stale steal at worst
// simulates a scenario twice, and both writers install identical bytes.
func (s *Store) TryLock(key string) (release func(), ok bool) {
	if s.ReadOnly() {
		return nil, false
	}
	shard, _ := s.address(key)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return nil, false
	}
	path := s.lockPath(key)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "pid=%d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(path) }, true
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, false
		}
		info, statErr := os.Stat(path)
		if statErr != nil {
			continue // holder released between open and stat: retry
		}
		if time.Since(info.ModTime()) < s.StaleLockAfter() {
			return nil, false // live holder
		}
		os.Remove(path) // stale: steal and retry the exclusive create
	}
	return nil, false
}

// WaitUnlocked polls until key's lock file is gone (true) or the
// deadline passes (false).
func (s *Store) WaitUnlocked(key string, deadline time.Time) bool {
	path := s.lockPath(key)
	for {
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(s.PollInterval())
	}
}

// Locked reports whether key's lock file currently exists. A failed
// TryLock with Locked false means no holder stands between the caller
// and the lock — the filesystem itself is refusing (read-only, full, or
// the store is in read-only mode) — so there is nobody to wait for.
func (s *Store) Locked(key string) bool {
	_, err := os.Stat(s.lockPath(key))
	return err == nil
}

// Counters returns a snapshot of the store's accounting.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// Snapshot renders the counters as a "store"-scoped obs snapshot. The
// scope is NonDeterministic: what is on disk varies run to run, so these
// metrics are diagnostics and never enter byte-compared artifacts.
func (s *Store) Snapshot() obs.Snapshot {
	reg := obs.NewRegistry()
	sc := reg.Scope("store").NonDeterministic()
	c := s.Counters()
	sc.Counter("hit").Add(float64(c.Hits))
	sc.Counter("miss").Add(float64(c.Misses))
	sc.Counter("write").Add(float64(c.Writes))
	sc.Counter("corrupt").Add(float64(c.Corrupt))
	return reg.Snapshot()
}

// Summary is the one-line accounting the CLIs print on stderr.
func (s *Store) Summary() string {
	c := s.Counters()
	return fmt.Sprintf("%d hits, %d misses, %d writes, %d corrupt", c.Hits, c.Misses, c.Writes, c.Corrupt)
}
