package core

import (
	"fmt"

	"clustersoc/internal/cluster"
	"clustersoc/internal/critpath"
	"clustersoc/internal/dimemas"
	"clustersoc/internal/network"
	"clustersoc/internal/obs"
	"clustersoc/internal/runner"
	"clustersoc/internal/stats"
	"clustersoc/internal/store"
	"clustersoc/internal/workloads"
)

// Session is the library face of the run-plane: a memoizing, optionally
// parallel scenario executor shared across an analysis session. Repeated
// Run calls with identical (system, workload, config) tuples simulate
// once; independent runs execute concurrently up to the session's worker
// bound. The package-level Run/Scalability helpers remain as sequential
// conveniences.
type Session struct {
	r *runner.Runner
}

// NewSession returns a session executing at most parallel simulations
// concurrently (<= 0 means GOMAXPROCS, 1 is fully sequential).
func NewSession(parallel int) *Session {
	return &Session{r: runner.New(parallel)}
}

// NewSessionWith wraps an existing runner — e.g. the one cmd/experiments
// shares with the figure generators — so Session helpers and generators
// dedupe against each other.
func NewSessionWith(r *runner.Runner) *Session { return &Session{r: r} }

// Runner exposes the underlying run-plane (for experiments.Options).
func (s *Session) Runner() *runner.Runner { return s.r }

// Stats reports the session's cache accounting.
func (s *Session) Stats() runner.Stats { return s.r.Stats() }

// SetProfiling toggles per-scenario observability profiles on the
// session's run-plane (see runner.Runner.SetProfiling).
func (s *Session) SetProfiling(on bool) { s.r.SetProfiling(on) }

// Profiles returns the profiles collected so far, sorted by scenario
// fingerprint.
func (s *Session) Profiles() []*obs.Profile { return s.r.Profiles() }

// SetChecking toggles the simcheck physical-invariant audit on the
// session's run-plane (see runner.Runner.SetChecking).
func (s *Session) SetChecking(on bool) { s.r.SetChecking(on) }

// SetCritPath toggles causal event-graph recording and critical-path
// analysis on the session's run-plane (see runner.Runner.SetCritPath).
func (s *Session) SetCritPath(on bool) { s.r.SetCritPath(on) }

// SetStore attaches a persistent content-addressed result store as the
// session's second cache tier (see runner.Runner.SetStore). Open one
// with runner.OpenStore.
func (s *Session) SetStore(st *store.Store) { s.r.SetStore(st) }

// CritPathReports returns the critical-path reports collected so far,
// sorted by scenario fingerprint.
func (s *Session) CritPathReports() []*critpath.Report { return s.r.Reports() }

// NewScenario validates and normalizes a run request into the canonical
// runner.Scenario exactly the way Session.Run does: the workload must be
// registered, GPU workloads require a GPU, and RanksPerNode is derived
// from the workload (clamped by the node's core count). Front ends that
// accept serialized requests (cmd/simd) resolve through this so their
// fingerprints land on the same cache entries the library face warms.
func NewScenario(cfg cluster.Config, workload string, wcfg workloads.Config) (runner.Scenario, error) {
	return scenario(cfg, workload, wcfg)
}

// scenario validates and normalizes a run request the way core.Run does.
func scenario(cfg cluster.Config, workload string, wcfg workloads.Config) (runner.Scenario, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return runner.Scenario{}, err
	}
	if w.GPUAccelerated() && cfg.NodeType.GPU == nil {
		return runner.Scenario{}, fmt.Errorf("core: workload %s needs a GPU; %s has none", workload, cfg.Name)
	}
	cfg.RanksPerNode = w.RanksPerNode()
	if cfg.NodeType.CPU.Cores < cfg.RanksPerNode {
		cfg.RanksPerNode = cfg.NodeType.CPU.Cores
	}
	return runner.Scenario{Cluster: cfg, Workload: workload, Config: wcfg}, nil
}

// Run executes a workload by name on the system at the given problem
// scale, memoized by the session.
func (s *Session) Run(cfg cluster.Config, workload string, scale float64) (cluster.Result, error) {
	return s.RunWithConfig(cfg, workload, workloads.Config{Scale: scale})
}

// RunWithConfig is Run with a full workload configuration.
func (s *Session) RunWithConfig(cfg cluster.Config, workload string, wcfg workloads.Config) (cluster.Result, error) {
	sc, err := scenario(cfg, workload, wcfg)
	if err != nil {
		return cluster.Result{}, err
	}
	res, err := s.r.Run(sc)
	return res.Result, err
}

// scalabilityScenario builds the traced scenario Scalability simulates
// at one cluster size, so callers wanting the raw run-plane Result (the
// Trace for exporters, the CritPath report) hit the same cache entries.
func scalabilityScenario(cfg cluster.Config, w workloads.Workload, nodes int, scale float64) runner.Scenario {
	c := cfg
	c.Nodes = nodes
	c.RanksPerNode = w.RanksPerNode()
	c.Traced = true
	return runner.Scenario{Cluster: c, Workload: w.Name(), Config: workloads.Config{Scale: scale}}
}

// ScalabilityPoint runs (or joins from the session cache) the traced
// scenario Scalability simulates at one cluster size and returns the
// full run-plane Result: the Trace for the exporters, and the CritPath
// report when recording is enabled. After a Scalability call covering
// the same size it is a guaranteed cache hit.
func (s *Session) ScalabilityPoint(cfg cluster.Config, workload string, nodes int, scale float64) (runner.Result, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return runner.Result{}, err
	}
	return s.r.Run(scalabilityScenario(cfg, w, nodes, scale))
}

// Scalability traces a workload across cluster sizes on the system type
// of cfg (the node/network choice; Nodes is overridden per point) and
// runs the replay decomposition. The per-size runs are independent, so
// they execute concurrently under a parallel session.
func (s *Session) Scalability(cfg cluster.Config, workload string, sizes []int, scale float64) (*ScalabilityResult, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	var scenarios []runner.Scenario
	for _, n := range sizes {
		scenarios = append(scenarios, scalabilityScenario(cfg, w, n, scale))
	}
	results, err := s.r.RunAll(scenarios)
	if err != nil {
		return nil, err
	}
	out := &ScalabilityResult{Workload: workload, Nodes: sizes}
	for i, n := range sizes {
		res := results[i]
		out.Runtimes = append(out.Runtimes, res.Runtime)
		if n == sizes[len(sizes)-1] {
			out.Efficiency = dimemas.Decompose(res.Trace)
			ideal := dimemas.Replay(res.Trace, dimemas.Options{Net: dimemas.IdealNetwork})
			lb := dimemas.Replay(res.Trace, dimemas.Options{
				Net: dimemas.NetworkModel{
					Name:           cfg.Network.Name,
					Bandwidth:      cfg.Network.Throughput,
					Latency:        cfg.Network.Latency,
					IntraBandwidth: network.MemoryPathBandwidth,
					IntraLatency:   network.MemoryPathLatency,
				},
				IdealLoadBalance: true,
			})
			if ideal > 0 {
				out.IdealNetworkGain = res.Runtime / ideal
			}
			if lb > 0 {
				out.IdealLoadBalanceGain = res.Runtime / lb
			}
		}
	}
	for _, rt := range out.Runtimes {
		out.Speedups = append(out.Speedups, out.Runtimes[0]/rt)
	}
	if len(sizes) >= 3 {
		out.Fit, _ = stats.FitScaling(sizes, out.Runtimes)
	}
	return out, nil
}
