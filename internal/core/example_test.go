package core_test

import (
	"fmt"

	"clustersoc/internal/core"
)

// Build the paper's proposed cluster and run a workload on it.
func ExampleRun() {
	spec := core.TX1(4, core.TenGigE)
	res, err := core.Run(spec, "jacobi", 0.02)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.System)
	fmt.Println(res.Ranks, "ranks")
	fmt.Println(res.Runtime > 0, res.Throughput > 0)
	// Output:
	// 4-node TX1 10GbE
	// 4 ranks
	// true true
}

// Place a run on the extended Roofline model (the paper's eq. 1-3).
func ExampleRooflineOf() {
	spec := core.TX1(8, core.TenGigE)
	res, err := core.Run(spec, "jacobi", 0.02)
	if err != nil {
		fmt.Println(err)
		return
	}
	a := core.RooflineOf(spec, res, false)
	fmt.Printf("OI = %.2f FLOP/B, limited by the %s roof\n", a.OI, a.Limit)
	// Output:
	// OI = 0.25 FLOP/B, limited by the operational roof
}

// The extended roofline model itself: the ridge points say where the
// memory and network roofs meet the compute roof.
func ExampleRooflineModel() {
	m := core.RooflineModel(core.TX1(8, core.TenGigE), false)
	fmt.Printf("peak %.0f GFLOPS, memory ridge OI %.2f, network ridge NI %.1f\n",
		m.PeakFlops/1e9, m.RidgeOI(), m.RidgeNI())
	// Output:
	// peak 16 GFLOPS, memory ridge OI 0.80, network ridge NI 38.7
}

// The strong-scaling methodology of Figs. 5/6 in three lines.
func ExampleScalability() {
	res, err := core.Scalability(core.TX1(8, core.TenGigE), "jacobi", []int{1, 2, 4}, 0.02)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(res.Speedups) == 3)
	fmt.Println(res.Speedups[0] == 1)
	fmt.Println(res.Efficiency.Eta > 0.5) // jacobi scales well
	// Output:
	// true
	// true
	// true
}
