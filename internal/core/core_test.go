package core

import (
	"reflect"
	"testing"

	"clustersoc/internal/roofline"
)

func TestRunByName(t *testing.T) {
	res, err := Run(TX1(2, TenGigE), "jacobi", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 || res.Throughput <= 0 {
		t.Fatal("empty result")
	}
	if _, err := Run(TX1(2, TenGigE), "nope", 0.02); err == nil {
		t.Fatal("unknown workload should error")
	}
	// GPU workloads refuse CPU-only systems.
	if _, err := Run(Cavium(), "jacobi", 0.02); err == nil {
		t.Fatal("jacobi on the Cavium should error")
	}
	// NPB on the Cavium works.
	if _, err := Run(Cavium(), "ep", 0.02); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkChoiceMatters(t *testing.T) {
	slow, err := Run(TX1(8, GigE), "ft", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(TX1(8, TenGigE), "ft", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Runtime >= slow.Runtime {
		t.Fatal("10GbE should beat 1GbE on ft")
	}
}

func TestRooflineOf(t *testing.T) {
	cfg := TX1(8, TenGigE)
	res, err := Run(cfg, "jacobi", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	a := RooflineOf(cfg, res, false)
	if a.Limit != roofline.LimitOperational {
		t.Errorf("jacobi limit = %s, want operational", a.Limit)
	}
	if a.PercentOfPeak <= 0 || a.PercentOfPeak > 100.5 {
		t.Errorf("%%peak = %v", a.PercentOfPeak)
	}
	m := RooflineModel(cfg, true)
	if m.PeakFlops <= RooflineModel(cfg, false).PeakFlops {
		t.Error("FP32 roof should exceed FP64")
	}
}

func TestScalability(t *testing.T) {
	res, err := Scalability(TX1(8, TenGigE), "tealeaf3d", []int{1, 2, 4}, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Speedups) != 3 || res.Speedups[0] != 1 {
		t.Fatalf("speedups %v", res.Speedups)
	}
	if res.Speedups[2] <= res.Speedups[1] {
		t.Fatal("speedup should grow to 4 nodes")
	}
	e := res.Efficiency
	if e.Eta <= 0 || e.Eta > 1 {
		t.Fatalf("eta = %v", e.Eta)
	}
	if res.IdealNetworkGain < 1 || res.IdealLoadBalanceGain < 1 {
		t.Fatalf("replay gains below 1: %v %v", res.IdealNetworkGain, res.IdealLoadBalanceGain)
	}
	if _, err := Scalability(TX1(8, TenGigE), "nope", []int{1, 2}, 0.03); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) != 15 {
		t.Fatalf("%d workloads, want 15 (7 GPU + 8 NPB)", len(names))
	}
	if names[0] != "hpl" {
		t.Fatalf("first workload %s", names[0])
	}
}

func TestSessionMemoizesAndMatchesRun(t *testing.T) {
	s := NewSession(2)
	cfg := TX1(2, TenGigE)
	first, err := s.Run(cfg, "jacobi", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Run(cfg, "jacobi", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("memoized rerun returned a different result")
	}
	direct, err := Run(cfg, "jacobi", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, direct) {
		t.Error("session result differs from the one-shot core.Run")
	}
	st := s.Stats()
	if st.Submitted != 2 || st.Hits != 1 || st.Simulated != 1 {
		t.Errorf("stats = %+v, want one simulation and one hit", st)
	}
	// Validation still applies on the session path.
	if _, err := s.Run(Cavium(), "jacobi", 0.02); err == nil {
		t.Error("jacobi on the Cavium should error through a session")
	}
	if _, err := s.Run(cfg, "nope", 0.02); err == nil {
		t.Error("unknown workload should error through a session")
	}
}

func TestSessionScalabilityMatchesSequential(t *testing.T) {
	sizes := []int{1, 2, 4}
	cfg := TX1(4, TenGigE)
	want, err := Scalability(cfg, "jacobi", sizes, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewSession(4).Scalability(cfg, "jacobi", sizes, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		if got.Runtimes[i] != want.Runtimes[i] || got.Speedups[i] != want.Speedups[i] {
			t.Errorf("size %d: parallel session diverged from sequential", sizes[i])
		}
	}
	if got.Efficiency != want.Efficiency {
		t.Error("efficiency decomposition diverged")
	}
	if got.IdealNetworkGain != want.IdealNetworkGain || got.IdealLoadBalanceGain != want.IdealLoadBalanceGain {
		t.Error("replay what-ifs diverged")
	}
	if got.Fit != want.Fit {
		t.Error("scaling fit diverged")
	}
}
