package core

import (
	"testing"

	"clustersoc/internal/roofline"
)

func TestRunByName(t *testing.T) {
	res, err := Run(TX1(2, TenGigE), "jacobi", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 || res.Throughput <= 0 {
		t.Fatal("empty result")
	}
	if _, err := Run(TX1(2, TenGigE), "nope", 0.02); err == nil {
		t.Fatal("unknown workload should error")
	}
	// GPU workloads refuse CPU-only systems.
	if _, err := Run(Cavium(), "jacobi", 0.02); err == nil {
		t.Fatal("jacobi on the Cavium should error")
	}
	// NPB on the Cavium works.
	if _, err := Run(Cavium(), "ep", 0.02); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkChoiceMatters(t *testing.T) {
	slow, err := Run(TX1(8, GigE), "ft", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(TX1(8, TenGigE), "ft", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Runtime >= slow.Runtime {
		t.Fatal("10GbE should beat 1GbE on ft")
	}
}

func TestRooflineOf(t *testing.T) {
	cfg := TX1(8, TenGigE)
	res, err := Run(cfg, "jacobi", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	a := RooflineOf(cfg, res, false)
	if a.Limit != roofline.LimitOperational {
		t.Errorf("jacobi limit = %s, want operational", a.Limit)
	}
	if a.PercentOfPeak <= 0 || a.PercentOfPeak > 100.5 {
		t.Errorf("%%peak = %v", a.PercentOfPeak)
	}
	m := RooflineModel(cfg, true)
	if m.PeakFlops <= RooflineModel(cfg, false).PeakFlops {
		t.Error("FP32 roof should exceed FP64")
	}
}

func TestScalability(t *testing.T) {
	res, err := Scalability(TX1(8, TenGigE), "tealeaf3d", []int{1, 2, 4}, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Speedups) != 3 || res.Speedups[0] != 1 {
		t.Fatalf("speedups %v", res.Speedups)
	}
	if res.Speedups[2] <= res.Speedups[1] {
		t.Fatal("speedup should grow to 4 nodes")
	}
	e := res.Efficiency
	if e.Eta <= 0 || e.Eta > 1 {
		t.Fatalf("eta = %v", e.Eta)
	}
	if res.IdealNetworkGain < 1 || res.IdealLoadBalanceGain < 1 {
		t.Fatalf("replay gains below 1: %v %v", res.IdealNetworkGain, res.IdealLoadBalanceGain)
	}
	if _, err := Scalability(TX1(8, TenGigE), "nope", []int{1, 2}, 0.03); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) != 15 {
		t.Fatalf("%d workloads, want 15 (7 GPU + 8 NPB)", len(names))
	}
	if names[0] != "hpl" {
		t.Fatalf("first workload %s", names[0])
	}
}
