// Package core is the library's public face: it composes the hardware
// models, workloads, and analyses into the paper's contribution — a
// GPGPU-accelerated, 10 GbE-connected cluster of mobile-class ARM SoCs,
// with the extended Roofline model and the trace-replay scalability
// methodology to reason about it.
//
// Typical use:
//
//	spec := core.TX1(8, core.TenGigE)
//	res, _ := core.Run(spec, "hpl", 0.25)
//	fmt.Println(core.RooflineOf(spec, res, false))
package core

import (
	"fmt"

	"clustersoc/internal/cluster"
	"clustersoc/internal/cuda"
	"clustersoc/internal/dimemas"
	"clustersoc/internal/network"
	"clustersoc/internal/roofline"
	"clustersoc/internal/soc"
	"clustersoc/internal/stats"
	"clustersoc/internal/workloads"
)

// NetworkChoice selects the cluster interconnect.
type NetworkChoice int

const (
	// GigE is the on-board 1 GbE of previous mobile-SoC clusters.
	GigE NetworkChoice = iota
	// TenGigE is the paper's proposed PCIe 10 GbE upgrade.
	TenGigE
)

func (n NetworkChoice) profile() network.Profile {
	if n == TenGigE {
		return network.TenGigE
	}
	return network.GigE
}

// TX1 returns the paper's proposed cluster: n Jetson TX1 nodes on the
// chosen network, with the NFS file server attached.
func TX1(nodes int, net NetworkChoice) cluster.Config {
	cfg := cluster.TX1Cluster(nodes, net.profile())
	cfg.FileServer = true
	return cfg
}

// TX2 returns the next-generation what-if cluster from the companion
// thesis: Jetson TX2 nodes on the chosen network.
func TX2(nodes int, net NetworkChoice) cluster.Config {
	cfg := cluster.TX1Cluster(nodes, net.profile())
	cfg.NodeType = soc.JetsonTX2()
	cfg.Name = fmt.Sprintf("%d-node TX2 %s", nodes, net.profile().Name)
	cfg.FileServer = true
	return cfg
}

// Cavium returns the many-core ARM comparison server with the paper's 32
// MPI processes.
func Cavium() cluster.Config { return cluster.CaviumServer(32) }

// GTX980 returns the discrete-GPU comparison cluster of n Xeon-hosted
// cards.
func GTX980(nodes int) cluster.Config {
	cfg := cluster.GTX980Cluster(nodes)
	cfg.FileServer = true
	return cfg
}

// Run executes a workload by name on the system at the given problem
// scale (1 = paper-sized) and returns its measurements.
func Run(cfg cluster.Config, workload string, scale float64) (cluster.Result, error) {
	return RunWithConfig(cfg, workload, workloads.Config{Scale: scale})
}

// RunWithMemModel is Run with an explicit CUDA memory-management model
// (Sec. III-B.5).
func RunWithMemModel(cfg cluster.Config, workload string, scale float64, model cuda.MemModel) (cluster.Result, error) {
	cfg.MemModel = model
	return Run(cfg, workload, scale)
}

// RunWithConfig is Run with a full workload configuration (work-ratio
// splits, FP16 inference). It is the one-shot convenience over a
// single-use sequential Session.
func RunWithConfig(cfg cluster.Config, workload string, wcfg workloads.Config) (cluster.Result, error) {
	return NewSession(1).RunWithConfig(cfg, workload, wcfg)
}

// RooflineModel builds the extended roofline (eq. 1-3) for one node of
// the system under its network; single selects the FP32 roof.
func RooflineModel(cfg cluster.Config, single bool) roofline.Model {
	peak := 0.0
	mem := cfg.NodeType.DRAMBandwidth
	if g := cfg.NodeType.GPU; g != nil {
		if single {
			peak = g.PeakFP32()
		} else {
			peak = g.PeakFP64()
		}
		mem = g.MemBandwidth
	} else {
		peak = cfg.NodeType.CPU.PeakFlops()
		mem = cfg.NodeType.CPU.MemBandwidth
	}
	return roofline.Model{
		Name:         cfg.Name,
		PeakFlops:    peak,
		MemBandwidth: mem,
		NetBandwidth: cfg.Network.Throughput,
	}
}

// RooflineOf places a run on the system's extended roofline: operational
// and network intensities, attainable peak, and the limiting factor.
// single selects the FP32 roof (the AI workloads); the scientific codes
// run double precision.
func RooflineOf(cfg cluster.Config, res cluster.Result, single bool) roofline.Analysis {
	m := RooflineModel(cfg, single)
	n := float64(cfg.Nodes)
	return m.Analyze(roofline.Point{
		Name:       res.System,
		FLOPs:      res.FLOPs / n,
		DRAMBytes:  res.DRAMBytes / n,
		NetBytes:   res.NetBytes / n,
		Throughput: res.Throughput / n,
	})
}

// ScalabilityResult is one workload's strong-scaling analysis (the Fig.
// 5/6 methodology): measured speedups, the fitted extrapolation, and the
// eta = LB * Ser * Trf decomposition at the largest size.
type ScalabilityResult struct {
	Workload   string
	Nodes      []int
	Runtimes   []float64
	Speedups   []float64
	Fit        stats.ScalingFit
	Efficiency dimemas.Efficiency
	// IdealNetworkGain and IdealLoadBalanceGain are the replay what-ifs at
	// the largest measured size.
	IdealNetworkGain     float64
	IdealLoadBalanceGain float64
}

// Scalability traces a workload across cluster sizes on the system type
// of cfg (the node/network choice; Nodes is overridden per point) and
// runs the replay decomposition. It is the sequential convenience over
// Session.Scalability.
func Scalability(cfg cluster.Config, workload string, sizes []int, scale float64) (*ScalabilityResult, error) {
	return NewSession(1).Scalability(cfg, workload, sizes, scale)
}

// Workloads lists the registered workload names, GPU set first.
func Workloads() []string {
	var names []string
	for _, w := range workloads.GPUWorkloads() {
		names = append(names, w.Name())
	}
	for _, w := range workloads.NPBWorkloads() {
		names = append(names, w.Name())
	}
	return names
}
