//go:build !amd64

package compute

// gemm8 applies an 8-deep k-panel to one row slab of C:
// c[j] += sum over t < 8 of a[t]*b[t*stride+j]. Pure-Go path for
// non-amd64 targets; the k-unroll still amortizes one C load/store over
// eight FMAs.
func gemm8(c, b, a []float64, stride int) {
	b0 := b[:len(c)]
	b1 := b[stride:][:len(c)]
	b2 := b[2*stride:][:len(c)]
	b3 := b[3*stride:][:len(c)]
	b4 := b[4*stride:][:len(c)]
	b5 := b[5*stride:][:len(c)]
	b6 := b[6*stride:][:len(c)]
	b7 := b[7*stride:][:len(c)]
	for j := range c {
		s := c[j]
		s += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
		s += a[4]*b4[j] + a[5]*b5[j] + a[6]*b6[j] + a[7]*b7[j]
		c[j] = s
	}
}
