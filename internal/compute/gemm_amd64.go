//go:build amd64

package compute

// gemmMicro8 is the SSE2 inner kernel (gemm_amd64.s). For j in [0, n)
// it computes c[j] += sum over t < 8 of a[t]*b[t*stride+j], two output
// elements per iteration via packed MULPD/ADDPD. n must be even and
// positive. Packed IEEE ops round exactly like the scalar loop, so the
// result depends only on the (fixed) summation tree, never on the
// worker partition.
//
//go:noescape
func gemmMicro8(c, b, a *float64, n, stride int)

// gemm8 applies an 8-deep k-panel to one row slab of C:
// c[j] += sum over t < 8 of a[t]*b[t*stride+j]. The even prefix runs in
// the SSE2 kernel (two doubles per instruction doubles the scalar flop
// ceiling); an odd trailing element is handled here.
func gemm8(c, b, a []float64, stride int) {
	n := len(c)
	if even := n &^ 1; even > 0 {
		gemmMicro8(&c[0], &b[0], &a[0], even, stride)
	}
	if n&1 != 0 {
		j := n - 1
		s := a[0]*b[j] + a[1]*b[stride+j] + a[2]*b[2*stride+j] + a[3]*b[3*stride+j]
		s += a[4]*b[4*stride+j] + a[5]*b[5*stride+j] + a[6]*b[6*stride+j] + a[7]*b[7*stride+j]
		c[j] += s
	}
}
