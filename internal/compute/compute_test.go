package compute

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func randomSlice(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.NormFloat64()
	}
	return out
}

// relTol reports whether a and b agree within a relative-or-absolute
// tolerance (reassociation-only differences, not algorithmic ones).
func relTol(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestByName(t *testing.T) {
	cases := []struct {
		name        string
		wantErr     bool
		accelerated bool
	}{
		{"reference", false, false},
		{"blocked", false, true},
		{"", true, false},
		{"Reference", true, false}, // registry keys are exact
		{"mps", true, false},
	}
	for _, tc := range cases {
		b, err := ByName(tc.name)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ByName(%q): accepted", tc.name)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ByName(%q): %v", tc.name, err)
		}
		if b.Name() != tc.name {
			t.Errorf("ByName(%q).Name() = %q", tc.name, b.Name())
		}
		if b.Accelerated() != tc.accelerated {
			t.Errorf("ByName(%q).Accelerated() = %v", tc.name, b.Accelerated())
		}
	}
	if len(Names()) != 2 {
		t.Fatalf("Names() = %v", Names())
	}
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Errorf("listed backend %q not constructible: %v", name, err)
		}
	}
}

func TestSetDefaultRestores(t *testing.T) {
	orig := Default()
	prev := SetDefault(Blocked{})
	if prev.Name() != orig.Name() {
		t.Fatalf("SetDefault returned %q, want %q", prev.Name(), orig.Name())
	}
	if Default().Name() != "blocked" {
		t.Fatalf("default is %q after SetDefault(Blocked)", Default().Name())
	}
	SetDefault(prev)
	if Default().Name() != orig.Name() {
		t.Fatalf("default not restored: %q", Default().Name())
	}
}

// Blocked GEMM must match Reference within reassociation tolerance on
// randomized shapes, both below and above the fallback threshold.
func TestBlockedGEMMMatchesReferenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		m := 1 + r.Intn(180)
		k := 1 + r.Intn(180)
		n := 1 + r.Intn(180)
		a := randomSlice(r, m*k)
		b := randomSlice(r, k*n)
		want := make([]float64, m*n)
		got := make([]float64, m*n)
		Reference{}.MatMul(want, a, b, m, k, n)
		Blocked{}.MatMul(got, a, b, m, k, n)
		for i := range want {
			if !relTol(got[i], want[i], 1e-9) {
				t.Fatalf("trial %d (%dx%dx%d): c[%d] = %v, reference %v",
					trial, m, k, n, i, got[i], want[i])
			}
		}
	}
}

// Zero entries must not change the product: the reference loop skips
// them, the blocked loop multiplies through.
func TestBlockedGEMMSparseRows(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m, k, n := 70, 70, 70
	a := randomSlice(r, m*k)
	for i := range a {
		if i%3 == 0 {
			a[i] = 0
		}
	}
	b := randomSlice(r, k*n)
	want := make([]float64, m*n)
	got := make([]float64, m*n)
	Reference{}.MatMul(want, a, b, m, k, n)
	Blocked{}.MatMul(got, a, b, m, k, n)
	for i := range want {
		if !relTol(got[i], want[i], 1e-9) {
			t.Fatalf("c[%d] = %v, reference %v", i, got[i], want[i])
		}
	}
}

// Below the blocking threshold the Blocked backend must fall back to the
// reference loops and reproduce their bytes exactly.
func TestBlockedFallbackIsByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m, k, n := 13, 17, 11 // m*k*n far below gemmMinFlops
	a := randomSlice(r, m*k)
	b := randomSlice(r, k*n)
	want := make([]float64, m*n)
	got := make([]float64, m*n)
	Reference{}.MatMul(want, a, b, m, k, n)
	Blocked{}.MatMul(got, a, b, m, k, n)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("fallback GEMM diverged at %d: %x vs %x",
				i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}

	x := randomSlice(r, 1000) // below vecMin
	y := randomSlice(r, 1000)
	if math.Float64bits(Reference{}.Dot(x, y)) != math.Float64bits(Blocked{}.Dot(x, y)) {
		t.Fatal("short-vector Dot fallback not byte-identical")
	}

	ar := append([]float64(nil), x...)
	ab := append([]float64(nil), x...)
	Reference{}.Axpy(0.5, y, ar)
	Blocked{}.Axpy(0.5, y, ab)
	for i := range ar {
		if math.Float64bits(ar[i]) != math.Float64bits(ab[i]) {
			t.Fatal("short-vector Axpy fallback not byte-identical")
		}
	}

	// Ops the Blocked engine does not accelerate (Gemv, Ger, Jacobi5)
	// are inherited from the embedded Reference wholesale: same method,
	// same bytes.
	yr := make([]float64, 40)
	yb := make([]float64, 40)
	aMat := randomSlice(r, 40*25)
	xv := randomSlice(r, 25)
	Reference{}.Gemv(yr, aMat, xv, 40, 25)
	Blocked{}.Gemv(yb, aMat, xv, 40, 25)
	for i := range yr {
		if math.Float64bits(yr[i]) != math.Float64bits(yb[i]) {
			t.Fatal("Gemv fallback not byte-identical")
		}
	}
}

// Blocked Dot must agree with the sequential reference within tolerance
// on long vectors (where the chunked reduction engages).
func TestBlockedDotMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1 << 15, 1<<16 + 37, 1<<17 + 1} {
		a := randomSlice(r, n)
		b := randomSlice(r, n)
		want := Reference{}.Dot(a, b)
		got := Blocked{}.Dot(a, b)
		if !relTol(got, want, 1e-9) {
			t.Fatalf("n=%d: blocked %v vs reference %v", n, got, want)
		}
	}
}

// gomaxprocsSweep runs f under several GOMAXPROCS settings and returns
// one result per setting.
func gomaxprocsSweep(t *testing.T, f func() []uint64) [][]uint64 {
	t.Helper()
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	var out [][]uint64
	for _, procs := range []int{1, 2, 3, orig} {
		runtime.GOMAXPROCS(procs)
		out = append(out, f())
	}
	return out
}

// Fixed-seed determinism: the same backend must produce identical bytes
// across repeated runs and across GOMAXPROCS values, for both engines.
func TestBackendDeterminismAcrossGOMAXPROCS(t *testing.T) {
	const m, k, n = 150, 130, 140
	r := rand.New(rand.NewSource(5))
	a := randomSlice(r, m*k)
	b := randomSlice(r, k*n)
	v := randomSlice(r, 1<<16)
	w := randomSlice(r, 1<<16)

	for _, be := range []Backend{Reference{}, Blocked{}} {
		run := func() []uint64 {
			c := make([]float64, m*n)
			be.MatMul(c, a, b, m, k, n)
			bits := make([]uint64, 0, len(c)+1)
			for _, x := range c {
				bits = append(bits, math.Float64bits(x))
			}
			bits = append(bits, math.Float64bits(be.Dot(v, w)))
			return bits
		}
		first := run()
		if again := run(); !equalBits(first, again) {
			t.Fatalf("%s: same-process rerun changed bytes", be.Name())
		}
		for i, got := range gomaxprocsSweep(t, run) {
			if !equalBits(first, got) {
				t.Fatalf("%s: GOMAXPROCS sweep entry %d changed bytes", be.Name(), i)
			}
		}
	}
}

func equalBits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Ger with alpha = -1 must be bitwise the seed LU trailing update
// row[j] -= x[i]*y[j], including the x[i] == 0 row skip.
func TestGerMatchesManualUpdate(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	const rows, cols, lda = 9, 7, 12
	a := randomSlice(r, rows*lda)
	x := randomSlice(r, rows)
	x[4] = 0 // exercise the skip
	y := randomSlice(r, cols)

	want := append([]float64(nil), a...)
	for i := 0; i < rows; i++ {
		if x[i] == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			want[i*lda+j] -= x[i] * y[j]
		}
	}
	got := append([]float64(nil), a...)
	Reference{}.Ger(-1, x, y, got, lda)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("Ger diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// Triad must tolerate the destination aliasing the scaled operand (the
// CG search-direction update p = r + beta*p).
func TestTriadAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	p := randomSlice(r, 257)
	rr := randomSlice(r, 257)
	beta := 0.75
	want := make([]float64, len(p))
	for i := range p {
		want[i] = rr[i] + beta*p[i]
	}
	Reference{}.Triad(p, rr, p, beta)
	for i := range want {
		if math.Float64bits(p[i]) != math.Float64bits(want[i]) {
			t.Fatalf("aliased triad diverged at %d", i)
		}
	}
}

// Blocked Im2col must match Reference exactly (pure data movement).
func TestBlockedIm2colMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	const c, h, w, k, stride, pad = 8, 30, 30, 3, 1, 1
	src := randomSlice(r, c*h*w)
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	size := c * k * k * outH * outW
	want := make([]float64, size)
	got := make([]float64, size)
	Reference{}.Im2col(want, src, c, h, w, k, stride, pad)
	Blocked{}.Im2col(got, src, c, h, w, k, stride, pad)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("im2col diverged at %d", i)
		}
	}
}
