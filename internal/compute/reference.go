package compute

import "math"

// Reference is the seed engine: the naive loops the calibration kernels
// shipped with, extracted verbatim from internal/kernels and internal/nn
// so that the default backend cannot change a single artifact byte. Row
// parallelism is owner-computes (each output element is produced by one
// worker with a fixed inner-loop order), so results are identical at any
// GOMAXPROCS; reductions (Dot, the Jacobi max-norm) run in index order.
type Reference struct{}

// Name returns "reference".
func (Reference) Name() string { return "reference" }

// Accelerated reports false: Reference is the artifact-defining engine.
func (Reference) Accelerated() bool { return false }

// MatMul computes c = a*b in parallel over rows (verbatim the seed
// kernels.MatMul loop, including the zero-skip).
func (Reference) MatMul(c, a, b []float64, m, k, n int) {
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[kk*n : (kk+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// Gemv accumulates y += a*x in parallel over rows. With y zeroed it is
// the seed kernels.MatVec; with y preloaded with biases it is the seed
// FC forward loop — both summation orders preserved exactly.
func (Reference) Gemv(y, a, x []float64, m, n int) {
	ParallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a[i*n : (i+1)*n]
			s := y[i]
			for j, v := range row {
				s += v * x[j]
			}
			y[i] = s
		}
	})
}

// Dot returns the sequential in-order inner product (verbatim the seed
// kernels.Dot).
func (Reference) Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x sequentially (verbatim the seed
// kernels.Axpy).
func (Reference) Axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Triad computes a = b + s*c in parallel (verbatim the seed
// kernels.StreamTriad; elementwise, so bytes are partition-independent).
func (Reference) Triad(a, b, c []float64, s float64) {
	ParallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = b[i] + s*c[i]
		}
	})
}

// Ger applies a[i*lda+j] += alpha*x[i]*y[j] in parallel over rows,
// skipping x[i] == 0 rows — exactly the seed LU trailing update, whose
// row[j] -= l*rowK[j] is bitwise (alpha = -1) the same arithmetic.
func (Reference) Ger(alpha float64, x, y, a []float64, lda int) {
	n := len(y)
	ParallelFor(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if x[i] == 0 {
				continue
			}
			ax := alpha * x[i]
			row := a[i*lda : i*lda+n]
			for j, v := range y {
				row[j] += ax * v
			}
		}
	})
}

// Jacobi5 performs one 5-point Jacobi sweep (verbatim the seed
// kernels.JacobiStep): rows in parallel, per-row max distances reduced
// in row order.
func (Reference) Jacobi5(dst, src, f []float64, nx, ny int, h float64) float64 {
	stride := ny + 2
	diffs := make([]float64, nx)
	ParallelFor(nx, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := (i + 1) * stride
			maxd := 0.0
			for j := 1; j <= ny; j++ {
				v := 0.25 * (src[row-stride+j] + src[row+stride+j] +
					src[row+j-1] + src[row+j+1] + h*h*f[row+j])
				d := math.Abs(v - src[row+j])
				if d > maxd {
					maxd = d
				}
				dst[row+j] = v
			}
			diffs[i] = maxd
		}
	})
	maxd := 0.0
	for _, d := range diffs {
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Im2col unrolls the patches sequentially (verbatim the seed nn.Im2col
// loop nest). dst is the zeroed (c*k*k) x (outH*outW) matrix.
func (Reference) Im2col(dst, src []float64, c, h, w, k, stride, pad int) {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	cols := outH * outW
	for ch := 0; ch < c; ch++ {
		for kh := 0; kh < k; kh++ {
			for kw := 0; kw < k; kw++ {
				row := (ch*k+kh)*k + kw
				for oh := 0; oh < outH; oh++ {
					ih := oh*stride + kh - pad
					if ih < 0 || ih >= h {
						continue
					}
					for ow := 0; ow < outW; ow++ {
						iw := ow*stride + kw - pad
						if iw < 0 || iw >= w {
							continue
						}
						dst[row*cols+oh*outW+ow] = src[(ch*h+ih)*w+iw]
					}
				}
			}
		}
	}
}
