package compute

import (
	"math/rand"
	"os"
	"testing"
	"time"
)

// gemmBench builds one large-GEMM problem of order n — the shape that
// dominates the calibration path (hpl's trailing updates, the NN GEMMs).
func gemmBench(n int) (a, b []float64) {
	r := rand.New(rand.NewSource(1))
	a = randomSlice(r, n*n)
	b = randomSlice(r, n*n)
	return a, b
}

// BenchmarkGEMMBackends times the square n=768 GEMM under every
// registered backend — the comparison BENCH_GUARD's speed guard pins.
func BenchmarkGEMMBackends(b *testing.B) {
	const n = 768
	am, bm := gemmBench(n)
	for _, name := range Names() {
		be, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(3 * 8 * n * n)
			for i := 0; i < b.N; i++ {
				c := make([]float64, n*n)
				be.MatMul(c, am, bm, n, n, n)
			}
			b.ReportMetric(2*float64(n)*float64(n)*float64(n)/1e9/b.Elapsed().Seconds()*float64(b.N), "GFLOP/s")
		})
	}
}

// TestGEMMBackendSpeedGuard asserts the Blocked backend delivers at
// least 2x the Reference backend on the large-GEMM calibration path.
// Timing-based, so it only runs when BENCH_GUARD=1 is set (a dedicated
// CI step); plain `go test ./...` skips it.
func TestGEMMBackendSpeedGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("timing guard: set BENCH_GUARD=1 to run")
	}

	const n = 768
	const attempts = 5
	am, bm := gemmBench(n)

	run := func(be Backend) time.Duration {
		c := make([]float64, n*n)
		start := time.Now()
		be.MatMul(c, am, bm, n, n, n)
		return time.Since(start)
	}
	bestOf := func(be Backend) time.Duration {
		best := run(be)
		for i := 1; i < attempts; i++ {
			if d := run(be); d < best {
				best = d
			}
		}
		return best
	}

	// Interleave a warm-up of each before timing.
	run(Reference{})
	run(Blocked{})
	ref, blk := bestOf(Reference{}), bestOf(Blocked{})

	speedup := float64(ref) / float64(blk)
	gflops := 2 * float64(n) * float64(n) * float64(n) / 1e9
	t.Logf("n=%d GEMM: reference %v (%.2f GFLOP/s), blocked %v (%.2f GFLOP/s), speedup %.2fx",
		n, ref, gflops/ref.Seconds(), blk, gflops/blk.Seconds(), speedup)
	if speedup < 2.0 {
		t.Fatalf("blocked backend is only %.2fx the reference on the n=%d GEMM (floor 2.0x): %v vs %v",
			speedup, n, blk, ref)
	}
}
