// Package compute is the pluggable execution seam for the host-side
// calibration kernels: every dense numeric primitive the real kernels in
// internal/kernels and internal/nn execute (GEMM, accumulating GEMV,
// dot/axpy/stream-triad, rank-1 update, 5-point Jacobi sweep, im2col)
// dispatches through a process-wide Backend.
//
// Two backends ship. Reference is the seed implementation extracted
// verbatim — same loops, same summation order, bit-for-bit the bytes the
// golden artifact captures were taken with — and stays the default.
// Blocked is a cache-blocked, goroutine-parallel engine with
// deterministic reductions (fixed chunk partitioning summed in index
// order, so results are identical across runs and GOMAXPROCS values); it
// falls back to Reference for the ops and shapes it does not accelerate,
// in the style of gorgonia-mps's MPSEng-vs-StdEng dispatch.
//
// The seam makes "which engine executed this kernel" a scenario
// parameter: cmd/experiments and cmd/roofline select a backend with
// -backend, tests select one with the CLUSTERSOC_BACKEND environment
// variable, and internal/perf places measured host kernels from either
// engine on the modeled roofline.
package compute

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// Backend executes the dense numeric primitives of the calibration
// kernels. All matrices are dense row-major float64. Implementations
// must be deterministic: for a fixed backend and fixed inputs the output
// bytes are identical across runs and across GOMAXPROCS settings.
type Backend interface {
	// Name is the backend's registry key ("reference", "blocked").
	Name() string
	// Accelerated reports whether the backend reorders or blocks the
	// reference arithmetic for speed. internal/nn uses it to route conv
	// forward passes through the im2col+GEMM path.
	Accelerated() bool
	// MatMul computes c = a*b for a (m x k), b (k x n), c (m x n).
	// c must be zero-initialized (freshly allocated); lengths must match.
	MatMul(c, a, b []float64, m, k, n int)
	// Gemv accumulates y += a*x for a (m x n), x (n), y (m). The caller
	// preloads y (zeros for a plain matvec, biases for an FC layer).
	Gemv(y, a, x []float64, m, n int)
	// Dot returns the inner product of two equal-length vectors.
	Dot(a, b []float64) float64
	// Axpy computes y += alpha*x in place.
	Axpy(alpha float64, x, y []float64)
	// Triad computes a = b + s*c elementwise (the STREAM triad). a may
	// alias c (the CG search-direction update p = r + beta*p).
	Triad(a, b, c []float64, s float64)
	// Ger applies the rank-1 update a[i*lda+j] += alpha*x[i]*y[j] for
	// i < len(x), j < len(y), where a points at the first element of a
	// submatrix with row stride lda. Rows with x[i] == 0 are skipped
	// (the LU trailing-update contract).
	Ger(alpha float64, x, y, a []float64, lda int)
	// Jacobi5 performs one weighted-Jacobi 5-point sweep for -lap(u)=f
	// on the halo-padded (nx+2) x (ny+2) row-major layout of
	// kernels.Grid2D, writing dst and returning the max-norm change.
	Jacobi5(dst, src, f []float64, nx, ny int, h float64) float64
	// Im2col unrolls a CHW image (c x h x w) into the (c*k*k) x
	// (outH*outW) patch matrix dst for a square-kernel convolution with
	// the given stride and zero padding. Out-of-bounds taps stay zero;
	// dst must be zero-initialized.
	Im2col(dst, src []float64, c, h, w, k, stride, pad int)
}

// Names lists the registered backends in presentation order.
func Names() []string { return []string{"reference", "blocked"} }

// ByName returns the backend registered under name.
func ByName(name string) (Backend, error) {
	switch name {
	case "reference":
		return Reference{}, nil
	case "blocked":
		return Blocked{}, nil
	}
	return nil, fmt.Errorf("compute: unknown backend %q (known: reference, blocked)", name)
}

// box pins the interface value behind one pointer so swaps are atomic
// regardless of the concrete backend type.
type box struct{ b Backend }

var current atomic.Pointer[box]

func init() {
	current.Store(&box{Reference{}})
	// CLUSTERSOC_BACKEND lets test runs select the engine without
	// touching call sites: CI runs the kernel/nn packages once per
	// backend. A typo must fail loudly, not silently test the default.
	if name := os.Getenv("CLUSTERSOC_BACKEND"); name != "" {
		b, err := ByName(name)
		if err != nil {
			panic(err)
		}
		current.Store(&box{b})
	}
}

// Default returns the process-wide backend the kernel wrappers dispatch
// through. It is Reference unless SetDefault or CLUSTERSOC_BACKEND chose
// otherwise.
func Default() Backend { return current.Load().b }

// SetDefault installs b as the process-wide backend and returns the
// previous one (so tests can restore it).
func SetDefault(b Backend) Backend {
	old := current.Swap(&box{b})
	return old.b
}

// ParallelFor runs body over [0,n) split into contiguous chunks across
// the available cores — the standard HPC decomposition, which keeps each
// worker streaming through adjacent memory. Chunking depends on
// GOMAXPROCS, so only elementwise or owner-computes work (where each
// index's result is independent of the partition) may rely on it for
// deterministic output.
func ParallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
