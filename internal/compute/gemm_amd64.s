//go:build amd64

#include "textflag.h"

// func gemmMicro8(c, b, a *float64, n, stride int)
//
// c[j] += a[0]*b[j] + a[1]*b[stride+j] + ... + a[7]*b[7*stride+j]
// for j in [0, n), n even. SSE2 only (amd64 baseline): packed
// MULPD/ADDPD process two doubles per instruction with the same IEEE
// rounding as the scalar loop. The per-element summation tree is
// (((t0+t1)+(t2+t3))+(t4+t5))+(t6+t7) added onto c, fixed by this code
// alone, so results are independent of the caller's worker partition.
TEXT ·gemmMicro8(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ a+16(FP), AX
	MOVQ n+24(FP), DX
	MOVQ stride+32(FP), BX

	// Row pointers: SI, R8..R14 point at b + t*stride for t = 0..7.
	LEAQ (SI)(BX*8), R8
	LEAQ (R8)(BX*8), R9
	LEAQ (R9)(BX*8), R10
	LEAQ (R10)(BX*8), R11
	LEAQ (R11)(BX*8), R12
	LEAQ (R12)(BX*8), R13
	LEAQ (R13)(BX*8), R14

	// Broadcast a[0..7] into both lanes of X8..X15.
	MOVQ     0(AX), X8
	UNPCKLPD X8, X8
	MOVQ     8(AX), X9
	UNPCKLPD X9, X9
	MOVQ     16(AX), X10
	UNPCKLPD X10, X10
	MOVQ     24(AX), X11
	UNPCKLPD X11, X11
	MOVQ     32(AX), X12
	UNPCKLPD X12, X12
	MOVQ     40(AX), X13
	UNPCKLPD X13, X13
	MOVQ     48(AX), X14
	UNPCKLPD X14, X14
	MOVQ     56(AX), X15
	UNPCKLPD X15, X15

	XORQ CX, CX

loop:
	MOVUPD (DI)(CX*8), X0

	MOVUPD (SI)(CX*8), X1
	MULPD  X8, X1
	MOVUPD (R8)(CX*8), X2
	MULPD  X9, X2
	MOVUPD (R9)(CX*8), X3
	MULPD  X10, X3
	MOVUPD (R10)(CX*8), X4
	MULPD  X11, X4
	ADDPD  X2, X1
	ADDPD  X4, X3
	MOVUPD (R11)(CX*8), X5
	MULPD  X12, X5
	MOVUPD (R12)(CX*8), X6
	MULPD  X13, X6
	ADDPD  X3, X1
	ADDPD  X6, X5
	MOVUPD (R13)(CX*8), X2
	MULPD  X14, X2
	MOVUPD (R14)(CX*8), X3
	MULPD  X15, X3
	ADDPD  X5, X1
	ADDPD  X3, X2
	ADDPD  X2, X1

	ADDPD  X1, X0
	MOVUPD X0, (DI)(CX*8)

	ADDQ $2, CX
	CMPQ CX, DX
	JL   loop

	RET
