package compute

// Blocked is the cache-blocked, goroutine-parallel engine. It
// accelerates the dense streaming ops — GEMM (tiled over row panels and
// k/j blocks so a B tile stays hot across a whole A panel, with a
// packed-SSE2 micro-kernel on amd64), Dot (fixed 8 KiB chunks reduced
// in chunk order), Axpy/Triad (parallel
// elementwise), and Im2col (parallel over channels) — and embeds
// Reference so every other op (Gemv, Ger, Jacobi5) and every shape below
// the blocking thresholds falls back to the seed loops, MPSEng-style.
//
// Determinism: every output element is produced by exactly one worker
// with a loop order fixed by the blocking geometry (never by the worker
// count), and the Dot partial sums are accumulated in chunk-index order,
// so a given input produces identical bytes at any GOMAXPROCS.
type Blocked struct{ Reference }

// Name returns "blocked".
func (Blocked) Name() string { return "blocked" }

// Accelerated reports true: results match Reference only within
// floating-point reassociation tolerance.
func (Blocked) Accelerated() bool { return true }

// Blocking geometry. The GEMM tiles keep one kc x nc panel of B
// (~256 KiB) plus an mc-row panel of A hot in L2 across a whole row
// tile, cutting B's DRAM traffic by ~mc versus the naive row sweep.
const (
	gemmMC = 64  // rows of C owned by one tile pass
	gemmKC = 128 // k-panel depth
	gemmNC = 256 // j-panel width

	// gemmMinFlops is the m*k*n volume below which tiling overhead
	// loses to the reference row loop.
	gemmMinFlops = 64 * 64 * 64

	// dotChunk is the fixed reduction chunk (independent of worker
	// count, which is what makes the reduction deterministic).
	dotChunk = 1 << 13

	// vecMin is the vector length below which parallel elementwise ops
	// fall back to the sequential reference loops.
	vecMin = 1 << 15
)

// MatMul computes c = a*b with L2 tiling, parallel over row tiles. Small
// products fall back to Reference.
func (e Blocked) MatMul(c, a, b []float64, m, k, n int) {
	if int64(m)*int64(k)*int64(n) < gemmMinFlops {
		e.Reference.MatMul(c, a, b, m, k, n)
		return
	}
	tiles := (m + gemmMC - 1) / gemmMC
	ParallelFor(tiles, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			i0 := t * gemmMC
			i1 := i0 + gemmMC
			if i1 > m {
				i1 = m
			}
			for k0 := 0; k0 < k; k0 += gemmKC {
				k1 := k0 + gemmKC
				if k1 > k {
					k1 = k
				}
				for j0 := 0; j0 < n; j0 += gemmNC {
					j1 := j0 + gemmNC
					if j1 > n {
						j1 = n
					}
					for i := i0; i < i1; i++ {
						crow := c[i*n+j0 : i*n+j1]
						// 8-deep micro-kernel (gemm8): one C load/store
						// amortizes eight FMAs (the naive loop pays a
						// load+store per FMA), and on amd64 the panel
						// runs as packed SSE2. The summation order is
						// fixed by the blocking geometry alone, so
						// output is partition-independent.
						kk := k0
						for ; kk+8 <= k1; kk += 8 {
							gemm8(crow, b[kk*n+j0:], a[i*k+kk:i*k+kk+8], n)
						}
						for ; kk < k1; kk++ {
							av := a[i*k+kk]
							brow := b[kk*n+j0 : kk*n+j1][:len(crow)]
							for j, bv := range brow {
								crow[j] += av * bv
							}
						}
					}
				}
			}
		}
	})
}

// Dot splits the vectors into fixed-size chunks, computes the partial
// sums in parallel, and reduces them in chunk order — deterministic at
// any GOMAXPROCS. Short vectors fall back to Reference.
func (e Blocked) Dot(a, b []float64) float64 {
	n := len(a)
	if n < vecMin {
		return e.Reference.Dot(a, b)
	}
	chunks := (n + dotChunk - 1) / dotChunk
	partial := make([]float64, chunks)
	ParallelFor(chunks, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			start := ci * dotChunk
			end := start + dotChunk
			if end > n {
				end = n
			}
			s := 0.0
			for i := start; i < end; i++ {
				s += a[i] * b[i]
			}
			partial[ci] = s
		}
	})
	s := 0.0
	for _, p := range partial {
		s += p
	}
	return s
}

// Axpy runs y += alpha*x in parallel for long vectors (elementwise, so
// bytes match Reference exactly); short vectors fall back.
func (e Blocked) Axpy(alpha float64, x, y []float64) {
	if len(y) < vecMin {
		e.Reference.Axpy(alpha, x, y)
		return
	}
	ParallelFor(len(y), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// Im2col unrolls the patch matrix in parallel over channels: each
// channel owns k*k disjoint destination rows, so writes never race and
// the output is partition-independent. Small unrolls fall back.
func (e Blocked) Im2col(dst, src []float64, c, h, w, k, stride, pad int) {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	cols := outH * outW
	if c*k*k*cols < vecMin {
		e.Reference.Im2col(dst, src, c, h, w, k, stride, pad)
		return
	}
	ParallelFor(c, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			for kh := 0; kh < k; kh++ {
				for kw := 0; kw < k; kw++ {
					row := (ch*k+kh)*k + kw
					for oh := 0; oh < outH; oh++ {
						ih := oh*stride + kh - pad
						if ih < 0 || ih >= h {
							continue
						}
						for ow := 0; ow < outW; ow++ {
							iw := ow*stride + kw - pad
							if iw < 0 || iw >= w {
								continue
							}
							dst[row*cols+oh*outW+ow] = src[(ch*h+ih)*w+iw]
						}
					}
				}
			}
		}
	})
}
